package eco

import (
	"testing"

	"tpsta/internal/block"
	"tpsta/internal/cell"
	"tpsta/internal/charlib"
	"tpsta/internal/circuits"
	"tpsta/internal/tech"
)

var (
	cachedLib *charlib.Library
	cachedTc  *tech.Tech
)

func setup(t testing.TB) (*tech.Tech, *charlib.Library) {
	t.Helper()
	if cachedLib == nil {
		tc, err := tech.ByName("130nm")
		if err != nil {
			t.Fatal(err)
		}
		cachedTc = tc
		lib, err := charlib.Characterize(tc, cell.Extended(), charlib.TestGrid(), charlib.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cachedLib = lib
	}
	return cachedTc, cachedLib
}

func TestOptimizeImprovesSlack(t *testing.T) {
	tc, lib := setup(t)
	cir, err := circuits.Get("c432")
	if err != nil {
		t.Fatal(err)
	}
	// Baseline arrival defines an intentionally violated clock.
	base, err := block.New(cir, tc, lib, block.Options{}).Run()
	if err != nil {
		t.Fatal(err)
	}
	period := base.WorstArrival * 0.93

	res, err := Optimize(cir, tc, lib, Options{ClockPeriod: period, MaxMoves: 25})
	if err != nil {
		t.Fatal(err)
	}
	if res.SlackBefore >= 0 {
		t.Fatalf("test premise broken: starting slack %g not negative", res.SlackBefore)
	}
	if res.SlackAfter <= res.SlackBefore {
		t.Errorf("optimization did not improve slack: %g → %g", res.SlackBefore, res.SlackAfter)
	}
	if len(res.Moves) == 0 {
		t.Fatal("no moves made")
	}
	// Moves are monotone in reported slack.
	for i := 1; i < len(res.Moves); i++ {
		if res.Moves[i].SlackAfter < res.Moves[i-1].SlackAfter {
			t.Errorf("move %d worsened slack: %g after %g", i, res.Moves[i].SlackAfter, res.Moves[i-1].SlackAfter)
		}
	}
	// Upsizing costs area.
	if res.AreaCostFrac <= 0 {
		t.Errorf("area cost %g should be positive", res.AreaCostFrac)
	}
	// The input circuit is untouched (clone semantics).
	for _, g := range cir.Gates {
		if cell.IsUpsized(g.Cell.Name) {
			t.Fatal("Optimize mutated its input circuit")
		}
	}
	t.Logf("slack %.1f → %.1f ps in %d moves (area +%.2f%%), met=%v",
		res.SlackBefore*1e12, res.SlackAfter*1e12, len(res.Moves), res.AreaCostFrac*100, res.Met)
}

func TestOptimizeAlreadyMet(t *testing.T) {
	tc, lib := setup(t)
	cir, _ := circuits.Get("c17")
	base, err := block.New(cir, tc, lib, block.Options{}).Run()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(cir, tc, lib, Options{ClockPeriod: base.WorstArrival * 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met || len(res.Moves) != 0 {
		t.Errorf("already-met design should need no moves: met=%v moves=%d", res.Met, len(res.Moves))
	}
}

func TestOptimizeErrors(t *testing.T) {
	tc, lib := setup(t)
	cir, _ := circuits.Get("c17")
	if _, err := Optimize(cir, tc, lib, Options{}); err == nil {
		t.Error("missing clock period should fail")
	}
}
