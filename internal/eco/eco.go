// Package eco implements a timing-driven gate-sizing loop — the
// engineering-change-order flow the drive-strength variants and the
// incremental block analyzer exist for. Given a clock period, the
// optimizer repeatedly upsizes the most critical upsizable gate (the one
// on the worst-slack path whose resizing most improves the worst slack)
// until the circuit meets timing, no move helps, or the budget runs out.
//
// The loop works on a clone of the input circuit and reports every move
// with its slack effect and the input-capacitance (area) cost.
package eco

import (
	"fmt"

	"tpsta/internal/block"
	"tpsta/internal/cell"
	"tpsta/internal/charlib"
	"tpsta/internal/netlist"
	"tpsta/internal/tech"
)

// Options tune the optimization.
type Options struct {
	// ClockPeriod is the timing target (required).
	ClockPeriod float64
	// MaxMoves bounds the number of resizings (default 50).
	MaxMoves int
	// InputSlew, Temp, VDD select the analysis point.
	InputSlew float64
	Temp, VDD float64
}

// Move records one accepted resizing.
type Move struct {
	Gate       string
	From, To   string
	SlackAfter float64
}

// Result reports the optimization.
type Result struct {
	// Met is true when the final worst slack is non-negative.
	Met bool
	// SlackBefore and SlackAfter are the worst slacks around the loop.
	SlackBefore, SlackAfter float64
	// Moves lists the accepted resizings in order.
	Moves []Move
	// AreaCostFrac is the relative increase in total input capacitance
	// (a proxy for area/power cost).
	AreaCostFrac float64
	// Circuit is the optimized clone.
	Circuit *netlist.Circuit
}

// Optimize runs the sizing loop. The library must contain the X2 variants
// (characterize cell.Extended()).
func Optimize(c *netlist.Circuit, tc *tech.Tech, lib *charlib.Library, opts Options) (*Result, error) {
	if opts.ClockPeriod <= 0 {
		return nil, fmt.Errorf("eco: a clock period is required")
	}
	if opts.MaxMoves <= 0 {
		opts.MaxMoves = 50
	}
	ext := cell.Extended()
	work, err := netlist.Clone(c, ext)
	if err != nil {
		return nil, err
	}
	an := block.New(work, tc, lib, block.Options{
		ClockPeriod: opts.ClockPeriod,
		InputSlew:   opts.InputSlew,
		Temp:        opts.Temp,
		VDD:         opts.VDD,
	})
	rep, err := an.Run()
	if err != nil {
		return nil, err
	}
	res := &Result{SlackBefore: rep.WorstSlack, Circuit: work}
	areaBefore := totalInputCap(work, tc)

	for len(res.Moves) < opts.MaxMoves && rep.WorstSlack < 0 {
		course := rep.CriticalCourse(work)
		move, improved, err := bestMoveOnCourse(an, work, ext, rep, course)
		if err != nil {
			return nil, err
		}
		if !improved {
			break
		}
		res.Moves = append(res.Moves, *move)
	}
	res.SlackAfter = rep.WorstSlack
	res.Met = rep.WorstSlack >= 0
	if areaBefore > 0 {
		res.AreaCostFrac = totalInputCap(work, tc)/areaBefore - 1
	}
	return res, nil
}

// bestMoveOnCourse tries upsizing each not-yet-upsized gate on the
// critical course — evaluating every trial with the incremental analyzer
// (each trial and its rollback touch only the affected cone) — and keeps
// the single move with the best resulting worst slack. improved is false
// when no candidate beats the current slack; on success the chosen move
// is left applied and rep reflects it.
func bestMoveOnCourse(an *block.Analyzer, work *netlist.Circuit, ext *cell.Lib, rep *block.Report, course []string) (*Move, bool, error) {
	bestSlack := rep.WorstSlack
	var bestGate *netlist.Gate
	trial := func(g *netlist.Gate, to string) error {
		if err := work.ReplaceCell(g, ext, to); err != nil {
			return err
		}
		return an.Incremental(rep, []*netlist.Gate{g})
	}
	for _, name := range course {
		node := work.Node(name)
		if node == nil || node.Driver == nil {
			continue
		}
		g := node.Driver
		if cell.IsUpsized(g.Cell.Name) {
			continue
		}
		from := g.Cell.Name
		if err := trial(g, from+cell.DriveSuffix); err != nil {
			return nil, false, err
		}
		if rep.WorstSlack > bestSlack {
			bestSlack = rep.WorstSlack
			bestGate = g
		}
		// Roll back for the next candidate.
		if err := trial(g, from); err != nil {
			return nil, false, err
		}
	}
	if bestGate == nil {
		return nil, false, nil
	}
	from := bestGate.Cell.Name
	if err := trial(bestGate, from+cell.DriveSuffix); err != nil {
		return nil, false, err
	}
	return &Move{Gate: bestGate.Name, From: from, To: from + cell.DriveSuffix, SlackAfter: bestSlack}, true, nil
}

// totalInputCap sums every gate pin's input capacitance — the area/power
// proxy the cost fraction is computed from.
func totalInputCap(c *netlist.Circuit, tc *tech.Tech) float64 {
	total := 0.0
	for _, g := range c.Gates {
		for _, pin := range g.Cell.Inputs {
			total += g.Cell.InputCap(tc, pin)
		}
	}
	return total
}
