package spice

import (
	"fmt"
	"math"

	"tpsta/internal/cell"
	"tpsta/internal/logic"
	"tpsta/internal/tech"
)

// Options tune a simulation run.
type Options struct {
	// Temp is the junction temperature in °C. Zero value means 25 °C is
	// NOT assumed — use New, which fills defaults; a literal Options{}
	// passed to Sim means 0 °C.
	Temp float64
	// VDD is the supply voltage; 0 selects the technology nominal.
	VDD float64
	// MaxSteps caps the number of transient steps per gate simulation
	// (default 60000).
	MaxSteps int
}

// Sim is a simulator bound to one technology card.
type Sim struct {
	Tech *tech.Tech
	Opts Options
}

// New returns a simulator at nominal conditions (25 °C, nominal VDD).
func New(tc *tech.Tech) *Sim {
	return &Sim{Tech: tc, Opts: Options{Temp: 25}}
}

// NewAt returns a simulator at the given temperature and supply.
func NewAt(tc *tech.Tech, temp, vdd float64) *Sim {
	return &Sim{Tech: tc, Opts: Options{Temp: temp, VDD: vdd}}
}

func (s *Sim) vdd() float64 {
	if s.Opts.VDD > 0 {
		return s.Opts.VDD
	}
	return s.Tech.VDD
}

func (s *Sim) maxSteps() int {
	if s.Opts.MaxSteps > 0 {
		return s.Opts.MaxSteps
	}
	return 60000
}

// Result reports one gate simulation.
type Result struct {
	// Delay is the 50 %→50 % propagation delay from the switching input
	// to the cell output, in seconds.
	Delay float64
	// OutputSlew is the 10 %–90 % transition time of the output edge.
	OutputSlew float64
	// OutputSlew2080 is the 20 %–80 % transition time, scaled by 0.8/0.6
	// to approximate a full-swing figure — the measurement convention the
	// emulated commercial characterization uses. Long settling tails make
	// it systematically smaller than OutputSlew.
	OutputSlew2080 float64
	// OutputRising is the direction of the output edge.
	OutputRising bool
	// Wave is the full output waveform (Z voltage over time).
	Wave Waveform
}

// SimulateGate drives pin of cell c with a rail-to-rail ramp of the given
// 10–90 % transition time tin while holding the side inputs at vector
// vec's steady values, with an external load capacitance on Z, and
// returns the measured delay and output slew.
func (s *Sim) SimulateGate(c *cell.Cell, vec cell.Vector, inputRising bool, tin, load float64) (Result, error) {
	in := Ramp(0, tin, s.vdd(), inputRising)
	return s.SimulateGateWave(c, vec, in, inputRising, load)
}

// SimulateGateWave is SimulateGate with an arbitrary input waveform
// (used for path simulation, where each gate sees the previous gate's
// simulated output).
func (s *Sim) SimulateGateWave(c *cell.Cell, vec cell.Vector, in Waveform, inputRising bool, load float64) (Result, error) {
	if err := in.validate(); err != nil {
		return Result{}, err
	}
	vdd := s.vdd()
	outRising, ok := c.OutputEdge(vec, inputRising)
	if !ok {
		return Result{}, fmt.Errorf("spice: vector %s does not sensitize %s of %s", vec.Key(), vec.Pin, c.Name)
	}
	nw, err := buildNetwork(c, s.Tech, s.Opts.Temp, vdd, load)
	if err != nil {
		return Result{}, err
	}

	// Pin voltage sources: the switching pin follows the input waveform,
	// side pins hold their vector rails.
	waves := make([]Waveform, len(nw.pinNames))
	for i, p := range nw.pinNames {
		switch {
		case p == vec.Pin:
			waves[i] = in
		default:
			lvl, present := vec.Side[p]
			if !present {
				return Result{}, fmt.Errorf("spice: vector %s leaves pin %s of %s unassigned", vec.Key(), p, c.Name)
			}
			if lvl {
				waves[i] = Flat(vdd)
			} else {
				waves[i] = Flat(0)
			}
		}
	}

	tStart := in.Times[0]
	inEnd := in.Times[len(in.Times)-1]

	// Crude time constant estimate for window/step sizing: the slowest
	// single device driving the total network capacitance.
	rMax := 0.0
	for i := range nw.devices {
		if r := 1 / nw.devices[i].gon; r > rMax {
			rMax = r
		}
	}
	cTot := 0.0
	for _, cp := range nw.caps {
		cTot += cp
	}
	tau := rMax * cTot
	if tau <= 0 {
		return Result{}, fmt.Errorf("spice: degenerate network for %s", c.Name)
	}

	dt := tau / 60
	if ramp := inEnd - tStart; ramp > 0 && ramp/40 < dt {
		dt = ramp / 40
	}
	window := (inEnd - tStart) + 30*tau

	vp := make([]float64, len(waves))
	for i, w := range waves {
		vp[i] = w.At(tStart)
	}
	v, err := nw.dcSolve(vp)
	if err != nil {
		return Result{}, err
	}

	n := len(nw.nodes)
	G := newMatrix(n)
	I := make([]float64, n)
	times := []float64{tStart}
	volts := []float64{v[nw.zIdx]}

	settleTarget := 0.0
	if outRising {
		settleTarget = vdd
	}

	t := tStart
	steps := 0
	maxSteps := s.maxSteps()
	extended := 0
	for {
		t += dt
		steps++
		if steps > maxSteps {
			return Result{}, fmt.Errorf("spice: %s did not settle within %d steps", c.Name, maxSteps)
		}
		for i, w := range waves {
			vp[i] = w.At(t)
		}
		// Backward Euler with 3 fixed-point refinements of the nonlinear
		// conductances.
		vNew := append([]float64(nil), v...)
		for it := 0; it < 3; it++ {
			nw.assemble(vNew, vp, G, I)
			for i := 0; i < n; i++ {
				G[i][i] += nw.caps[i] / dt
				I[i] += nw.caps[i] / dt * v[i]
			}
			x, err := solveLinear(G, I)
			if err != nil {
				return Result{}, err
			}
			vNew = x
		}
		v = vNew
		times = append(times, t)
		volts = append(volts, v[nw.zIdx])

		if t >= tStart+window {
			if math.Abs(v[nw.zIdx]-settleTarget) < 0.005*vdd {
				break
			}
			if extended >= 6 {
				return Result{}, fmt.Errorf("spice: output of %s stuck at %.3f V (target %.3f V)", c.Name, v[nw.zIdx], settleTarget)
			}
			extended++
			window *= 2
		} else if t > inEnd && math.Abs(v[nw.zIdx]-settleTarget) < 0.001*vdd {
			break
		}
	}

	out := Waveform{Times: times, Volts: volts}
	inCross, ok := in.Cross(vdd/2, inputRising)
	if !ok {
		return Result{}, fmt.Errorf("spice: input waveform never crosses 50%%")
	}
	outCross, ok := out.Cross(vdd/2, outRising)
	if !ok {
		return Result{}, fmt.Errorf("spice: output of %s never crosses 50%%", c.Name)
	}
	slew, ok := out.Slew(vdd, outRising)
	if !ok {
		return Result{}, fmt.Errorf("spice: output of %s never completes its edge", c.Name)
	}
	slew2080, ok := out.SlewBetween(vdd, 0.2, 0.8, outRising)
	if !ok {
		return Result{}, fmt.Errorf("spice: output of %s never completes its 20-80 edge", c.Name)
	}
	return Result{
		Delay:          outCross - inCross,
		OutputSlew:     slew,
		OutputSlew2080: slew2080 * (0.8 / 0.6),
		OutputRising:   outRising,
		Wave:           out,
	}, nil
}

// PathStage is one gate instance along a simulated path.
type PathStage struct {
	// Cell is the library cell.
	Cell *cell.Cell
	// Vec names the sensitized pin and fixes the side inputs.
	Vec cell.Vector
	// Load is the total external capacitance on the stage output,
	// including the next stage's input pin (the caller computes fanout
	// loading from the netlist).
	Load float64
}

// PathResult reports a chained path simulation.
type PathResult struct {
	// StageDelays and StageSlews hold the per-gate 50–50 delays and
	// 10–90 output slews.
	StageDelays []float64
	StageSlews  []float64
	// Total is the input-to-output 50–50 delay (the sum of stage delays).
	Total float64
	// FinalRising is the edge direction at the path output.
	FinalRising bool
}

// SimulatePath chains gate simulations along stages: the first gate sees a
// ramp with transition time tin, every later gate sees its predecessor's
// simulated output waveform. This is the reference ("electrical
// simulation") against which the paper's Tables 7–9 measure model error.
func (s *Sim) SimulatePath(stages []PathStage, inputRising bool, tin float64) (PathResult, error) {
	if len(stages) == 0 {
		return PathResult{}, fmt.Errorf("spice: empty path")
	}
	res := PathResult{}
	wave := Ramp(0, tin, s.vdd(), inputRising)
	rising := inputRising
	for i, st := range stages {
		r, err := s.SimulateGateWave(st.Cell, st.Vec, wave, rising, st.Load)
		if err != nil {
			return PathResult{}, fmt.Errorf("stage %d (%s/%s): %w", i, st.Cell.Name, st.Vec.Pin, err)
		}
		res.StageDelays = append(res.StageDelays, r.Delay)
		res.StageSlews = append(res.StageSlews, r.OutputSlew)
		res.Total += r.Delay
		wave = r.Wave
		rising = r.OutputRising
	}
	res.FinalRising = rising
	return res, nil
}

// SwitchingInput describes one simultaneously switching input of a
// multiple-input-switching (MIS) simulation.
type SwitchingInput struct {
	// Pin is the switching input.
	Pin string
	// Rising is the edge direction.
	Rising bool
	// Offset delays this input's ramp start relative to t=0 (may be
	// negative: that input switches first).
	Offset float64
}

// MISResult reports a multiple-input-switching simulation.
type MISResult struct {
	// OutputCross is the absolute time of the output's 50% crossing.
	OutputCross float64
	// OutputRising is the output edge direction.
	OutputRising bool
	// OutputSlew is the 10-90% output transition time.
	OutputSlew float64
	// Wave is the output waveform.
	Wave Waveform
}

// SimulateGateMIS drives several inputs of the cell with (possibly
// staggered) ramps while the remaining side inputs hold steady levels —
// the "multiple simultaneous transitions" analysis the paper lists as
// future work. The initial and final input states must produce different
// output levels; the measured output crossing is absolute (t=0 is the
// un-offset ramp start), so callers can compare alignments.
func (s *Sim) SimulateGateMIS(c *cell.Cell, switching []SwitchingInput, side map[string]bool, tin, load float64) (MISResult, error) {
	if len(switching) == 0 {
		return MISResult{}, fmt.Errorf("spice: no switching inputs")
	}
	vdd := s.vdd()

	// Determine initial/final logic output to know the expected edge.
	initEnv := make(map[string]logic.Value, len(c.Inputs))
	finEnv := make(map[string]logic.Value, len(c.Inputs))
	assigned := map[string]bool{}
	for _, sw := range switching {
		if assigned[sw.Pin] {
			return MISResult{}, fmt.Errorf("spice: pin %s switches twice", sw.Pin)
		}
		assigned[sw.Pin] = true
		if sw.Rising {
			initEnv[sw.Pin], finEnv[sw.Pin] = logic.V0, logic.V1
		} else {
			initEnv[sw.Pin], finEnv[sw.Pin] = logic.V1, logic.V0
		}
	}
	for _, pin := range c.Inputs {
		if assigned[pin] {
			continue
		}
		lvl, ok := side[pin]
		if !ok {
			return MISResult{}, fmt.Errorf("spice: pin %s neither switching nor held", pin)
		}
		assigned[pin] = true
		if lvl {
			initEnv[pin], finEnv[pin] = logic.V1, logic.V1
		} else {
			initEnv[pin], finEnv[pin] = logic.V0, logic.V0
		}
	}
	v0 := c.Eval(initEnv)
	v1 := c.Eval(finEnv)
	if v0 == v1 || !v0.IsStable() || !v1.IsStable() {
		return MISResult{}, fmt.Errorf("spice: MIS stimulus does not toggle the output (%s → %s)", v0, v1)
	}
	outRising := v1 == logic.V1

	nw, err := buildNetwork(c, s.Tech, s.Opts.Temp, vdd, load)
	if err != nil {
		return MISResult{}, err
	}
	waves := make([]Waveform, len(nw.pinNames))
	tMin, tMax := math.Inf(1), math.Inf(-1)
	for i, p := range nw.pinNames {
		var w Waveform
		found := false
		for _, sw := range switching {
			if sw.Pin == p {
				w = Ramp(sw.Offset, tin, vdd, sw.Rising)
				found = true
				break
			}
		}
		if !found {
			if side[p] {
				w = Flat(vdd)
			} else {
				w = Flat(0)
			}
		} else {
			if w.Times[0] < tMin {
				tMin = w.Times[0]
			}
			if w.Times[len(w.Times)-1] > tMax {
				tMax = w.Times[len(w.Times)-1]
			}
		}
		waves[i] = w
	}

	// Transient: reuse the single-input machinery's stepping inline.
	rMax := 0.0
	for i := range nw.devices {
		if r := 1 / nw.devices[i].gon; r > rMax {
			rMax = r
		}
	}
	cTot := 0.0
	for _, cp := range nw.caps {
		cTot += cp
	}
	tau := rMax * cTot
	dt := tau / 60
	if ramp := tin * slewToRamp; ramp/40 < dt {
		dt = ramp / 40
	}
	window := (tMax - tMin) + 30*tau

	vp := make([]float64, len(waves))
	for i, w := range waves {
		vp[i] = w.At(tMin)
	}
	v, err := nw.dcSolve(vp)
	if err != nil {
		return MISResult{}, err
	}
	n := len(nw.nodes)
	G := newMatrix(n)
	I := make([]float64, n)
	times := []float64{tMin}
	volts := []float64{v[nw.zIdx]}
	settle := 0.0
	if outRising {
		settle = vdd
	}
	t := tMin
	steps := 0
	extended := 0
	for {
		t += dt
		steps++
		if steps > s.maxSteps() {
			return MISResult{}, fmt.Errorf("spice: MIS run did not settle")
		}
		for i, w := range waves {
			vp[i] = w.At(t)
		}
		vNew := append([]float64(nil), v...)
		for it := 0; it < 3; it++ {
			nw.assemble(vNew, vp, G, I)
			for i := 0; i < n; i++ {
				G[i][i] += nw.caps[i] / dt
				I[i] += nw.caps[i] / dt * v[i]
			}
			x, err := solveLinear(G, I)
			if err != nil {
				return MISResult{}, err
			}
			vNew = x
		}
		v = vNew
		times = append(times, t)
		volts = append(volts, v[nw.zIdx])
		if t >= tMin+window {
			if math.Abs(v[nw.zIdx]-settle) < 0.005*vdd {
				break
			}
			if extended >= 6 {
				return MISResult{}, fmt.Errorf("spice: MIS output stuck at %.3f V", v[nw.zIdx])
			}
			extended++
			window *= 2
		} else if t > tMax && math.Abs(v[nw.zIdx]-settle) < 0.001*vdd {
			break
		}
	}
	out := Waveform{Times: times, Volts: volts}
	cross, ok := out.Cross(vdd/2, outRising)
	if !ok {
		return MISResult{}, fmt.Errorf("spice: MIS output never crosses 50%%")
	}
	slew, ok := out.Slew(vdd, outRising)
	if !ok {
		return MISResult{}, fmt.Errorf("spice: MIS output edge incomplete")
	}
	return MISResult{OutputCross: cross, OutputRising: outRising, OutputSlew: slew, Wave: out}, nil
}
