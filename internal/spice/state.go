package spice

import (
	"fmt"
	"strings"

	"tpsta/internal/cell"
	"tpsta/internal/logic"
)

// DeviceState is the condition of one transistor during a sensitized
// transition, in the notation of the paper's Figs. 2 and 3: steady ON
// (arrow), steady OFF (cross), or switching with the final state given
// (dashed arrow / dashed cross).
type DeviceState int

// Device conditions.
const (
	StateOff DeviceState = iota
	StateOn
	StateTurnsOn  // off → on (dashed arrow)
	StateTurnsOff // on → off (dashed cross)
)

// String renders the state.
func (s DeviceState) String() string {
	switch s {
	case StateOff:
		return "OFF"
	case StateOn:
		return "ON"
	case StateTurnsOn:
		return "OFF→ON"
	case StateTurnsOff:
		return "ON→OFF"
	default:
		return fmt.Sprintf("DeviceState(%d)", int(s))
	}
}

// DeviceReport pairs a topology device with its state.
type DeviceReport struct {
	Device cell.Device
	State  DeviceState
}

// StateReport computes, for a sensitized transition (pin and side values
// from vec, direction from inputRising), the steady/switching state of
// every transistor of the cell — the analysis of the paper's Figs. 2/3.
func StateReport(c *cell.Cell, vec cell.Vector, inputRising bool) ([]DeviceReport, error) {
	// Net logic values before and after the transition.
	env := make(map[string]logic.Value, len(c.Inputs)+len(c.Stages))
	for side, lvl := range vec.Side {
		if lvl {
			env[side] = logic.V1
		} else {
			env[side] = logic.V0
		}
	}
	if inputRising {
		env[vec.Pin] = logic.VR
	} else {
		env[vec.Pin] = logic.VF
	}
	for _, st := range c.Stages {
		env[st.Out] = logic.Not(st.PD.Eval(env))
	}

	top := c.Topology()
	out := make([]DeviceReport, len(top.Devices))
	for i, d := range top.Devices {
		gv, ok := env[d.Gate]
		if !ok {
			return nil, fmt.Errorf("spice: gate net %q has no value", d.Gate)
		}
		conducts := func(t logic.Trit) (bool, error) {
			switch t {
			case logic.T1:
				return d.NMOS, nil
			case logic.T0:
				return !d.NMOS, nil
			default:
				return false, fmt.Errorf("spice: gate net %q undetermined under vector %s", d.Gate, vec.Key())
			}
		}
		before, err := conducts(gv.Initial())
		if err != nil {
			return nil, err
		}
		after, err := conducts(gv.Final())
		if err != nil {
			return nil, err
		}
		switch {
		case before && after:
			out[i] = DeviceReport{d, StateOn}
		case !before && !after:
			out[i] = DeviceReport{d, StateOff}
		case after:
			out[i] = DeviceReport{d, StateTurnsOn}
		default:
			out[i] = DeviceReport{d, StateTurnsOff}
		}
	}
	return out, nil
}

// FormatStateReport renders a report as the textual equivalent of a
// Fig. 2/3 panel: one line per device with polarity, gate net, channel
// terminals and state.
func FormatStateReport(c *cell.Cell, vec cell.Vector, inputRising bool) (string, error) {
	reps, err := StateReport(c, vec, inputRising)
	if err != nil {
		return "", err
	}
	dir := "falling"
	if inputRising {
		dir = "rising"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s %s via %s (Case %d, %s)\n",
		c.Name, dir, "transition", vec.Pin, vec.Case, vec.Key())
	for _, r := range reps {
		pol := "pMOS"
		if r.Device.NMOS {
			pol = "nMOS"
		}
		fmt.Fprintf(&b, "  %s %-4s  %s—%s  %s\n", pol, r.Device.Gate, r.Device.A, r.Device.B, r.State)
	}
	return b.String(), nil
}

// OnPathResistanceFactor returns the count of parallel ON devices in the
// series element adjacent to the switching device of the first stage —
// the paper's first-order explanation of why Case 1 of AO22 is fastest.
// It is exposed for tests and the complexgate example; the transient
// simulator does not use it.
func OnPathResistanceFactor(c *cell.Cell, vec cell.Vector, inputRising bool) (int, error) {
	reps, err := StateReport(c, vec, inputRising)
	if err != nil {
		return 0, err
	}
	// Find the switching device of the conducting network in stage 1: the
	// one whose gate is the sensitized pin and that turns on.
	var sw *DeviceReport
	for i := range reps {
		r := &reps[i]
		if r.Device.Gate == vec.Pin && r.State == StateTurnsOn {
			sw = r
			break
		}
	}
	if sw == nil {
		return 0, fmt.Errorf("spice: no switching device for pin %s", vec.Pin)
	}
	// Count steady-ON devices of the same polarity sharing a channel node
	// with it via the series chain: ON devices between the switching
	// device's far terminal and the rail, grouped by parallel terminals.
	count := 0
	for _, r := range reps {
		if r.State != StateOn || r.Device.NMOS != sw.Device.NMOS {
			continue
		}
		if r.Device.A == sw.Device.A || r.Device.B == sw.Device.B ||
			r.Device.A == sw.Device.B || r.Device.B == sw.Device.A {
			count++
		}
	}
	return count, nil
}
