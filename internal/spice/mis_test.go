package spice

import (
	"math"
	"testing"

	"tpsta/internal/cell"
)

// TestMISSimultaneousVsSingle: on a NAND2, both inputs rising together
// produce a later output fall than a single input rising with the other
// already high — the classic multiple-input-switching push-out for
// serial nMOS stacks.
func TestMISNAND2PushOut(t *testing.T) {
	tc := t130(t)
	s := New(tc)
	nand := cell.Default().MustGet("NAND2")
	load := 2 * nand.InputCap(tc, "A")

	// Single-input reference: A rises with B=1.
	single, err := s.SimulateGate(nand, nand.Vectors("A")[0], true, 40e-12, load)
	if err != nil {
		t.Fatal(err)
	}
	// MIS: A and B rise together.
	mis, err := s.SimulateGateMIS(nand, []SwitchingInput{
		{Pin: "A", Rising: true}, {Pin: "B", Rising: true},
	}, nil, 40e-12, load)
	if err != nil {
		t.Fatal(err)
	}
	if mis.OutputRising {
		t.Fatal("NAND2 output should fall")
	}
	// Both measured from the input 50% crossing at the same ramp timing:
	// the ramp used by SimulateGate starts at 0 like the un-offset MIS
	// ramps, so the input cross times coincide.
	inCross := 40e-12 * slewToRamp / 2
	misDelay := mis.OutputCross - inCross
	if misDelay <= single.Delay {
		t.Errorf("simultaneous rise (%.2f ps) should be slower than single-input (%.2f ps)",
			misDelay*1e12, single.Delay*1e12)
	}
	// Push-out is material but bounded.
	ratio := misDelay / single.Delay
	if ratio > 3 {
		t.Errorf("implausible MIS push-out ×%.2f", ratio)
	}
}

// TestMISNOR2SpeedUp: on a NOR2, both inputs rising together discharge
// the output through two parallel nMOS — faster than a single input.
func TestMISNOR2SpeedUp(t *testing.T) {
	tc := t130(t)
	s := New(tc)
	nor := cell.Default().MustGet("NOR2")
	load := 2 * nor.InputCap(tc, "A")
	single, err := s.SimulateGate(nor, nor.Vectors("A")[0], true, 40e-12, load)
	if err != nil {
		t.Fatal(err)
	}
	mis, err := s.SimulateGateMIS(nor, []SwitchingInput{
		{Pin: "A", Rising: true}, {Pin: "B", Rising: true},
	}, nil, 40e-12, load)
	if err != nil {
		t.Fatal(err)
	}
	inCross := 40e-12 * slewToRamp / 2
	misDelay := mis.OutputCross - inCross
	if misDelay >= single.Delay {
		t.Errorf("parallel MIS discharge (%.2f ps) should beat single input (%.2f ps)",
			misDelay*1e12, single.Delay*1e12)
	}
}

// TestMISStaggeringConverges: with a large positive offset on the second
// input, the MIS delay approaches the single-input case measured from
// the late input.
func TestMISStaggering(t *testing.T) {
	tc := t130(t)
	s := New(tc)
	nand := cell.Default().MustGet("NAND2")
	load := 2 * nand.InputCap(tc, "A")
	single, err := s.SimulateGate(nand, nand.Vectors("A")[0], true, 40e-12, load)
	if err != nil {
		t.Fatal(err)
	}
	offset := 400e-12
	mis, err := s.SimulateGateMIS(nand, []SwitchingInput{
		{Pin: "A", Rising: true, Offset: offset}, // A switches long after B
		{Pin: "B", Rising: true},
	}, nil, 40e-12, load)
	if err != nil {
		t.Fatal(err)
	}
	lateCross := offset + 40e-12*slewToRamp/2
	delay := mis.OutputCross - lateCross
	if rel := math.Abs(delay-single.Delay) / single.Delay; rel > 0.08 {
		t.Errorf("staggered MIS delay %.2f ps should approach single-input %.2f ps (off by %.1f%%)",
			delay*1e12, single.Delay*1e12, rel*100)
	}
}

func TestMISErrors(t *testing.T) {
	tc := t130(t)
	s := New(tc)
	nand := cell.Default().MustGet("NAND2")
	if _, err := s.SimulateGateMIS(nand, nil, nil, 40e-12, 1e-15); err == nil {
		t.Error("no switching inputs should fail")
	}
	// Output does not toggle: A rising with B=0 keeps NAND at 1.
	if _, err := s.SimulateGateMIS(nand, []SwitchingInput{{Pin: "A", Rising: true}},
		map[string]bool{"B": false}, 40e-12, 1e-15); err == nil {
		t.Error("non-toggling stimulus should fail")
	}
	// Unassigned pin.
	if _, err := s.SimulateGateMIS(nand, []SwitchingInput{{Pin: "A", Rising: true}},
		nil, 40e-12, 1e-15); err == nil {
		t.Error("unassigned side pin should fail")
	}
	// Duplicate switching pin.
	if _, err := s.SimulateGateMIS(nand, []SwitchingInput{
		{Pin: "A", Rising: true}, {Pin: "A", Rising: false},
	}, map[string]bool{"B": true}, 40e-12, 1e-15); err == nil {
		t.Error("duplicate switching pin should fail")
	}
}
