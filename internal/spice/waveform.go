// Package spice is the electrical-simulation substrate standing in for
// the commercial simulator (Spectre) used by the paper. It elaborates a
// cell's transistor topology into an RC network — voltage-controlled
// switch-level MOS conductances with alpha-power-law drive, gate and
// junction parasitic capacitances — and solves the transient with backward
// Euler. Gate delays (50 %–50 %) and output transition times (10 %–90 %)
// are measured from the waveforms; whole paths are simulated by chaining
// each gate's output waveform into the next gate's input.
//
// The simulator reproduces the two mechanisms the paper's Section III
// identifies behind sensitization-vector-dependent delay: the number of
// parallel ON devices in the conducting pull network (effective resistance)
// and ON devices of the opposite network exposing internal parasitic
// capacitance to the switching node (charge sharing).
package spice

import (
	"fmt"
	"sort"
)

// Waveform is a piecewise-linear voltage trace. Times are strictly
// increasing; the waveform holds its first value before Times[0] and its
// last value after Times[len-1].
type Waveform struct {
	Times []float64
	Volts []float64
}

// At returns the voltage at time t by linear interpolation.
func (w Waveform) At(t float64) float64 {
	n := len(w.Times)
	if n == 0 {
		return 0
	}
	if t <= w.Times[0] {
		return w.Volts[0]
	}
	if t >= w.Times[n-1] {
		return w.Volts[n-1]
	}
	i := sort.SearchFloat64s(w.Times, t)
	// w.Times[i-1] < t <= w.Times[i]
	t0, t1 := w.Times[i-1], w.Times[i]
	v0, v1 := w.Volts[i-1], w.Volts[i]
	return v0 + (v1-v0)*(t-t0)/(t1-t0)
}

// Cross returns the first time the waveform crosses voltage v in the
// given direction. ok is false if it never does.
func (w Waveform) Cross(v float64, rising bool) (t float64, ok bool) {
	for i := 1; i < len(w.Times); i++ {
		v0, v1 := w.Volts[i-1], w.Volts[i]
		var hit bool
		if rising {
			hit = v0 < v && v1 >= v
		} else {
			hit = v0 > v && v1 <= v
		}
		if hit {
			t0, t1 := w.Times[i-1], w.Times[i]
			return t0 + (t1-t0)*(v-v0)/(v1-v0), true
		}
	}
	return 0, false
}

// Final returns the last voltage of the waveform.
func (w Waveform) Final() float64 {
	if len(w.Volts) == 0 {
		return 0
	}
	return w.Volts[len(w.Volts)-1]
}

// Slew returns the 10 %–90 % transition time of the waveform's main edge
// relative to the supply vdd; ok is false if the edge never completes.
func (w Waveform) Slew(vdd float64, rising bool) (float64, bool) {
	return w.SlewBetween(vdd, 0.1, 0.9, rising)
}

// SlewBetween measures the transition time between the lo and hi supply
// fractions (e.g. 0.2/0.8 for the 20–80 % convention some commercial
// characterization flows use).
func (w Waveform) SlewBetween(vdd, lo, hi float64, rising bool) (float64, bool) {
	vl, vh := lo*vdd, hi*vdd
	if rising {
		t1, ok1 := w.Cross(vl, true)
		t2, ok2 := w.Cross(vh, true)
		if !ok1 || !ok2 {
			return 0, false
		}
		return t2 - t1, true
	}
	t1, ok1 := w.Cross(vh, false)
	t2, ok2 := w.Cross(vl, false)
	if !ok1 || !ok2 {
		return 0, false
	}
	return t2 - t1, true
}

// slewToRamp converts a 10–90 % transition time to the full 0–100 % ramp
// duration of a linear ramp.
const slewToRamp = 1 / 0.8

// Ramp builds a linear input ramp starting at time start with the given
// 10–90 % transition time, swinging the full rail (0↔vdd).
func Ramp(start, slew1090, vdd float64, rising bool) Waveform {
	dur := slew1090 * slewToRamp
	if dur <= 0 {
		dur = 1e-15
	}
	v0, v1 := 0.0, vdd
	if !rising {
		v0, v1 = vdd, 0
	}
	return Waveform{
		Times: []float64{start, start + dur},
		Volts: []float64{v0, v1},
	}
}

// Flat builds a constant waveform.
func Flat(v float64) Waveform {
	return Waveform{Times: []float64{0}, Volts: []float64{v}}
}

// validate checks monotone time order (used by tests and the simulator).
func (w Waveform) validate() error {
	if len(w.Times) != len(w.Volts) {
		return fmt.Errorf("spice: waveform has %d times but %d volts", len(w.Times), len(w.Volts))
	}
	for i := 1; i < len(w.Times); i++ {
		if w.Times[i] <= w.Times[i-1] {
			return fmt.Errorf("spice: waveform times not increasing at %d", i)
		}
	}
	return nil
}
