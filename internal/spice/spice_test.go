package spice

import (
	"math"
	"testing"

	"tpsta/internal/cell"
	"tpsta/internal/num"
	"tpsta/internal/tech"
)

func t130(t testing.TB) *tech.Tech {
	t.Helper()
	tc, err := tech.ByName("130nm")
	if err != nil {
		t.Fatal(err)
	}
	return tc
}

func TestWaveformAtAndCross(t *testing.T) {
	w := Waveform{Times: []float64{0, 1, 3}, Volts: []float64{0, 2, 2}}
	cases := []struct{ t, v float64 }{
		{-1, 0}, {0, 0}, {0.5, 1}, {1, 2}, {2, 2}, {5, 2},
	}
	for _, c := range cases {
		if got := w.At(c.t); math.Abs(got-c.v) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", c.t, got, c.v)
		}
	}
	if ct, ok := w.Cross(1, true); !ok || math.Abs(ct-0.5) > 1e-12 {
		t.Errorf("Cross(1,rising) = %v, %v", ct, ok)
	}
	if _, ok := w.Cross(1, false); ok {
		t.Error("no falling crossing expected")
	}
	if _, ok := w.Cross(3, true); ok {
		t.Error("crossing above range should fail")
	}
}

func TestRampAndSlew(t *testing.T) {
	vdd := 1.2
	w := Ramp(10e-12, 80e-12, vdd, true)
	// 10-90% slew of a linear full ramp of duration 100ps is 80ps.
	slew, ok := w.Slew(vdd, true)
	if !ok || math.Abs(slew-80e-12) > 1e-15 {
		t.Errorf("rising slew = %v, %v", slew, ok)
	}
	fall := Ramp(0, 40e-12, vdd, false)
	slew, ok = fall.Slew(vdd, false)
	if !ok || math.Abs(slew-40e-12) > 1e-15 {
		t.Errorf("falling slew = %v, %v", slew, ok)
	}
	if v := fall.At(0); !num.Eq(v, vdd) {
		t.Errorf("falling ramp starts at %v", v)
	}
	if f := Flat(0.5); !num.Eq(f.At(123), 0.5) || !num.Eq(f.Final(), 0.5) {
		t.Error("Flat broken")
	}
}

func TestWaveformValidate(t *testing.T) {
	bad := Waveform{Times: []float64{0, 0}, Volts: []float64{0, 1}}
	if bad.validate() == nil {
		t.Error("non-increasing times should fail validation")
	}
	mismatch := Waveform{Times: []float64{0}, Volts: []float64{0, 1}}
	if mismatch.validate() == nil {
		t.Error("length mismatch should fail validation")
	}
}

func TestSolveLinear(t *testing.T) {
	G := [][]float64{{2, 1}, {1, 3}}
	I := []float64{5, 10}
	x, err := solveLinear(G, I)
	if err != nil {
		t.Fatal(err)
	}
	// 2x+y=5, x+3y=10 → x=1, y=3
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("solution = %v", x)
	}
	if _, err := solveLinear([][]float64{{0, 0}, {0, 0}}, []float64{1, 1}); err == nil {
		t.Error("singular matrix should fail")
	}
	// Needs pivoting: zero on the diagonal.
	G2 := [][]float64{{0, 1}, {1, 0}}
	I2 := []float64{2, 3}
	x2, err := solveLinear(G2, I2)
	if err != nil || math.Abs(x2[0]-3) > 1e-12 || math.Abs(x2[1]-2) > 1e-12 {
		t.Errorf("pivoting solve = %v, %v", x2, err)
	}
}

func TestInverterDelayBasics(t *testing.T) {
	tc := t130(t)
	s := New(tc)
	inv := cell.Default().MustGet("INV")
	vec := inv.Vectors("A")[0]
	load := 4 * inv.InputCap(tc, "A")
	r, err := s.SimulateGate(inv, vec, true, 40e-12, load)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OutputRising == false {
		t.Error("rising input to INV gives falling output")
	}
	if r.Delay < 1e-12 || r.Delay > 500e-12 {
		t.Errorf("INV FO4-ish delay out of range: %g", r.Delay)
	}
	if r.OutputSlew <= 0 {
		t.Errorf("non-positive slew %g", r.OutputSlew)
	}
	// More load → more delay.
	r2, err := s.SimulateGate(inv, vec, true, 40e-12, 3*load)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Delay <= r.Delay {
		t.Errorf("delay should grow with load: %g vs %g", r2.Delay, r.Delay)
	}
	// Slower input → more delay.
	r3, err := s.SimulateGate(inv, vec, true, 160e-12, load)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Delay <= r.Delay {
		t.Errorf("delay should grow with input slew: %g vs %g", r3.Delay, r.Delay)
	}
}

func TestEnvironmentalTrends(t *testing.T) {
	tc := t130(t)
	inv := cell.Default().MustGet("INV")
	vec := inv.Vectors("A")[0]
	load := 4 * inv.InputCap(tc, "A")
	base, err := New(tc).SimulateGate(inv, vec, false, 40e-12, load)
	if err != nil {
		t.Fatal(err)
	}
	hot, err := NewAt(tc, 125, 0).SimulateGate(inv, vec, false, 40e-12, load)
	if err != nil {
		t.Fatal(err)
	}
	if hot.Delay <= base.Delay {
		t.Errorf("hotter should be slower: %g vs %g", hot.Delay, base.Delay)
	}
	lowV, err := NewAt(tc, 25, 0.9*tc.VDD).SimulateGate(inv, vec, false, 40e-12, load)
	if err != nil {
		t.Fatal(err)
	}
	if lowV.Delay <= base.Delay {
		t.Errorf("lower VDD should be slower: %g vs %g", lowV.Delay, base.Delay)
	}
}

// gateDelays runs all vectors of (cell, pin) and returns delays indexed by
// Case, for the given input edge.
func gateDelays(t *testing.T, tc *tech.Tech, cellName, pin string, rising bool) []float64 {
	t.Helper()
	c := cell.Default().MustGet(cellName)
	s := New(tc)
	load := c.InputCap(tc, pin) // loaded with a gate of the same type
	var out []float64
	for _, vec := range c.Vectors(pin) {
		r, err := s.SimulateGate(c, vec, rising, 40e-12, load)
		if err != nil {
			t.Fatalf("%s %s case %d: %v", cellName, pin, vec.Case, err)
		}
		out = append(out, r.Delay)
	}
	return out
}

// TestTable3AO22FallOrdering reproduces the headline result of paper
// Table 3: for a falling transition through input A of AO22, Case 1
// (C=0,D=0: both top pMOS on) is fastest, Case 2 (C=1: extra internal
// charge path) is slowest, Case 3 in between — across all technologies.
func TestTable3AO22FallOrdering(t *testing.T) {
	for _, tc := range tech.All() {
		d := gateDelays(t, tc, "AO22", "A", false)
		if len(d) != 3 {
			t.Fatalf("%s: %d cases", tc.Name, len(d))
		}
		if !(d[0] < d[2] && d[2] < d[1]) {
			t.Errorf("%s: AO22 fall ordering want c1<c3<c2, got %.2f %.2f %.2f ps",
				tc.Name, d[0]*1e12, d[1]*1e12, d[2]*1e12)
		}
		// The delta must be material (several percent), as in the paper.
		delta := (d[1] - d[0]) / d[0]
		if delta < 0.03 {
			t.Errorf("%s: AO22 fall delta only %.1f%%", tc.Name, delta*100)
		}
		if delta > 0.35 {
			t.Errorf("%s: AO22 fall delta implausibly large %.1f%%", tc.Name, delta*100)
		}
	}
}

// TestTable4OA12RiseOrdering reproduces paper Table 4: for a rising
// transition through input C of OA12, Case 1 (A=1,B=0) is slowest and
// Case 3 (A=1,B=1: both bottom nMOS on) fastest.
func TestTable4OA12RiseOrdering(t *testing.T) {
	for _, tc := range tech.All() {
		d := gateDelays(t, tc, "OA12", "C", true)
		if len(d) != 3 {
			t.Fatalf("%s: %d cases", tc.Name, len(d))
		}
		if !(d[2] < d[0]) || !(d[1] < d[0]) {
			t.Errorf("%s: OA12 rise ordering want c3,c2 < c1, got %.2f %.2f %.2f ps",
				tc.Name, d[0]*1e12, d[1]*1e12, d[2]*1e12)
		}
		delta := (d[0] - d[2]) / d[0]
		if delta < 0.03 || delta > 0.35 {
			t.Errorf("%s: OA12 rise delta %.1f%% outside plausible band", tc.Name, delta*100)
		}
	}
}

func TestPathSimulation(t *testing.T) {
	tc := t130(t)
	lib := cell.Default()
	s := New(tc)
	inv := lib.MustGet("INV")
	nand := lib.MustGet("NAND2")
	// INV → NAND2(A) → INV chain.
	stages := []PathStage{
		{Cell: inv, Vec: inv.Vectors("A")[0], Load: nand.InputCap(tc, "A")},
		{Cell: nand, Vec: nand.Vectors("A")[0], Load: inv.InputCap(tc, "A")},
		{Cell: inv, Vec: inv.Vectors("A")[0], Load: 2 * inv.InputCap(tc, "A")},
	}
	r, err := s.SimulatePath(stages, true, 40e-12)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.StageDelays) != 3 {
		t.Fatalf("stage count %d", len(r.StageDelays))
	}
	sum := 0.0
	for i, d := range r.StageDelays {
		if d <= 0 {
			t.Errorf("stage %d delay %g", i, d)
		}
		sum += d
	}
	if math.Abs(sum-r.Total) > 1e-15 {
		t.Errorf("Total %g != sum %g", r.Total, sum)
	}
	// rising → falling → rising → falling.
	if r.FinalRising {
		t.Error("three inverting stages flip the edge")
	}
	if _, err := s.SimulatePath(nil, true, 40e-12); err == nil {
		t.Error("empty path should fail")
	}
}

func TestSimulateGateErrors(t *testing.T) {
	tc := t130(t)
	s := New(tc)
	ao22 := cell.Default().MustGet("AO22")
	// A non-sensitizing vector must be rejected.
	bad := cell.Vector{Pin: "A", Side: map[string]bool{"B": false, "C": false, "D": false}}
	if _, err := s.SimulateGate(ao22, bad, true, 40e-12, 1e-15); err == nil {
		t.Error("non-sensitizing vector accepted")
	}
	// A vector leaving a side pin unassigned must be rejected.
	incomplete := cell.Vector{Pin: "A", Side: map[string]bool{"B": true}}
	if _, err := s.SimulateGate(ao22, incomplete, true, 40e-12, 1e-15); err == nil {
		t.Error("incomplete vector accepted")
	}
}

func TestStateReportFig2(t *testing.T) {
	// Paper Fig. 2a: AO22, falling A, Case 1 (B=1, C=0, D=0).
	ao22 := cell.Default().MustGet("AO22")
	vec := ao22.Vectors("A")[0]
	reps, err := StateReport(ao22, vec, false)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]DeviceState{}
	for _, r := range reps {
		pol := "p"
		if r.Device.NMOS {
			pol = "n"
		}
		// First matching device per (polarity, gate) is enough here: the
		// core has exactly one device per polarity per pin.
		key := pol + r.Device.Gate
		if _, seen := byKey[key]; !seen {
			byKey[key] = r.State
		}
	}
	// A falls: pA turns on, nA turns off.
	if byKey["pA"] != StateTurnsOn {
		t.Errorf("pA = %s, want OFF→ON", byKey["pA"])
	}
	if byKey["nA"] != StateTurnsOff {
		t.Errorf("nA = %s, want ON→OFF", byKey["nA"])
	}
	// B=1: nB on, pB off. C=D=0: pC,pD on, nC,nD off (Fig. 2a: both top
	// parallel pMOS conduct — the fastest case).
	if byKey["nB"] != StateOn || byKey["pB"] != StateOff {
		t.Errorf("B devices: n=%s p=%s", byKey["nB"], byKey["pB"])
	}
	for _, g := range []string{"C", "D"} {
		if byKey["p"+g] != StateOn {
			t.Errorf("p%s = %s, want ON", g, byKey["p"+g])
		}
		if byKey["n"+g] != StateOff {
			t.Errorf("n%s = %s, want OFF", g, byKey["n"+g])
		}
	}
	// Case 2 (C=1,D=0): only pD on, and nC creates the internal charge
	// path the paper blames for the extra delay.
	vec2 := ao22.Vectors("A")[1]
	reps2, err := StateReport(ao22, vec2, false)
	if err != nil {
		t.Fatal(err)
	}
	on := map[string]bool{}
	for _, r := range reps2 {
		pol := "p"
		if r.Device.NMOS {
			pol = "n"
		}
		if r.State == StateOn {
			on[pol+r.Device.Gate] = true
		}
	}
	if on["pC"] || !on["pD"] || !on["nC"] {
		t.Errorf("case 2 states wrong: %v", on)
	}
	// The formatted report mentions every device state.
	txt, err := FormatStateReport(ao22, vec, false)
	if err != nil || len(txt) == 0 {
		t.Fatalf("FormatStateReport: %v", err)
	}
}

func TestOnPathResistanceFactor(t *testing.T) {
	ao22 := cell.Default().MustGet("AO22")
	// Falling A: charging through pA in series with the C/D pair. Case 1
	// has both pC and pD on (factor 2); cases 2 and 3 only one (factor 1).
	wants := []int{2, 1, 1}
	for i, vec := range ao22.Vectors("A") {
		got, err := OnPathResistanceFactor(ao22, vec, false)
		if err != nil {
			t.Fatal(err)
		}
		if got != wants[i] {
			t.Errorf("case %d factor = %d, want %d", i+1, got, wants[i])
		}
	}
}

func TestDCSolveOperatingPoint(t *testing.T) {
	tc := t130(t)
	inv := cell.Default().MustGet("INV")
	nw, err := buildNetwork(inv, tc, 25, tc.VDD, 1e-15)
	if err != nil {
		t.Fatal(err)
	}
	// Input low → output high.
	v, err := nw.dcSolve([]float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v[nw.zIdx]-tc.VDD) > 0.01*tc.VDD {
		t.Errorf("Z = %g, want ~VDD", v[nw.zIdx])
	}
	// Input high → output low.
	v, err = nw.dcSolve([]float64{tc.VDD})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v[nw.zIdx]) > 0.01*tc.VDD {
		t.Errorf("Z = %g, want ~0", v[nw.zIdx])
	}
}

func TestAllComplexCellsSimulate(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tc := t130(t)
	s := New(tc)
	for _, c := range cell.Default().ComplexCells() {
		for _, pin := range c.MultiVectorPins() {
			for _, vec := range c.Vectors(pin) {
				r, err := s.SimulateGate(c, vec, true, 40e-12, c.InputCap(tc, pin))
				if err != nil {
					t.Errorf("%s/%s case %d: %v", c.Name, pin, vec.Case, err)
					continue
				}
				if r.Delay <= 0 || r.Delay > 1e-9 {
					t.Errorf("%s/%s case %d: delay %g out of range", c.Name, pin, vec.Case, r.Delay)
				}
			}
		}
	}
}

func TestSlewBetweenConvention(t *testing.T) {
	// Linear ramp: the 20-80% window is exactly 0.6/0.8 of the 10-90%.
	w := Ramp(0, 80e-12, 1.2, true)
	s1090, ok1 := w.Slew(1.2, true)
	s2080, ok2 := w.SlewBetween(1.2, 0.2, 0.8, true)
	if !ok1 || !ok2 {
		t.Fatal("crossings missing")
	}
	if math.Abs(s2080/s1090-0.75) > 1e-9 {
		t.Errorf("20-80/10-90 ratio = %v, want 0.75 on a linear ramp", s2080/s1090)
	}
}

func TestOutputSlewConventionGap(t *testing.T) {
	// Real (exponential-tailed) gate outputs: the scaled 20-80% figure
	// systematically underestimates the 10-90% one — the correlation gap
	// the baseline LUT inherits.
	tc := t130(t)
	inv := cell.Default().MustGet("INV")
	vec := inv.Vectors("A")[0]
	r, err := New(tc).SimulateGate(inv, vec, true, 40e-12, 4*inv.InputCap(tc, "A"))
	if err != nil {
		t.Fatal(err)
	}
	if r.OutputSlew2080 <= 0 {
		t.Fatal("no 20-80 slew measured")
	}
	if r.OutputSlew2080 >= r.OutputSlew {
		t.Errorf("scaled 20-80 slew (%g) should undershoot the 10-90 one (%g)",
			r.OutputSlew2080, r.OutputSlew)
	}
	// But not absurdly: within 40%.
	if r.OutputSlew2080 < 0.6*r.OutputSlew {
		t.Errorf("convention gap implausibly large: %g vs %g", r.OutputSlew2080, r.OutputSlew)
	}
}

func BenchmarkSimulateGateINV(b *testing.B) {
	tc := t130(b)
	inv := cell.Default().MustGet("INV")
	vec := inv.Vectors("A")[0]
	load := 4 * inv.InputCap(tc, "A")
	s := New(tc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SimulateGate(inv, vec, true, 40e-12, load); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateGateAO22(b *testing.B) {
	tc := t130(b)
	ao22 := cell.Default().MustGet("AO22")
	vec := ao22.Vectors("A")[1]
	load := ao22.InputCap(tc, "A")
	s := New(tc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SimulateGate(ao22, vec, false, 40e-12, load); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSimulateGateExtremes(t *testing.T) {
	tc := t130(t)
	s := New(tc)
	inv := cell.Default().MustGet("INV")
	vec := inv.Vectors("A")[0]
	// Zero external load: only self-loading, still settles.
	r0, err := s.SimulateGate(inv, vec, true, 40e-12, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r0.Delay <= 0 {
		t.Error("zero-load delay should be positive")
	}
	// A very slow input still settles; the 50-50 delay may legitimately
	// go small or negative (the gate switches at its input threshold well
	// before the slow ramp's midpoint), but the measurement must stay in
	// a sane band and the output slew must track the input.
	rSlow, err := s.SimulateGate(inv, vec, true, 2e-9, 4*inv.InputCap(tc, "A"))
	if err != nil {
		t.Fatal(err)
	}
	if rSlow.Delay < -2e-9 || rSlow.Delay > 2e-9 {
		t.Errorf("slow-input delay %g out of band", rSlow.Delay)
	}
	if rSlow.OutputSlew <= r0.OutputSlew {
		t.Error("slow input should slow the output edge")
	}
	// Huge load: still settles (window extension), monotonically slower.
	rBig, err := s.SimulateGate(inv, vec, true, 40e-12, 100*inv.InputCap(tc, "A"))
	if err != nil {
		t.Fatal(err)
	}
	if rBig.Delay <= r0.Delay {
		t.Error("huge load should increase delay")
	}
	// Degenerate step limit trips cleanly.
	tiny := &Sim{Tech: tc, Opts: Options{Temp: 25, MaxSteps: 3}}
	if _, err := tiny.SimulateGateWave(inv, vec, Ramp(0, 40e-12, tc.VDD, true), true, 1e-15); err == nil {
		t.Error("step-limited run should fail loudly")
	}
}
