package spice

import (
	"fmt"
	"math"

	"tpsta/internal/cell"
	"tpsta/internal/num"
	"tpsta/internal/tech"
)

// node index sentinels for rail terminals.
const (
	railVDD = -1
	railGND = -2
)

// netDevice is one transistor of an elaborated network, with indices
// resolved and electrical parameters pre-computed for the simulation
// conditions.
type netDevice struct {
	nmos bool
	// gateNode is the solvable-node index of the gate net, or -1 when the
	// gate is a driven pin (gatePin set instead).
	gateNode int
	gatePin  int
	a, b     int // channel terminal node indices, or railVDD/railGND
	gon      float64
	vt       float64
}

// network is a cell's RC network prepared for transient solution.
type network struct {
	tc   *tech.Tech
	temp float64
	vdd  float64

	nodes    []string // solvable node names; index = node id
	nodeIdx  map[string]int
	caps     []float64 // nodal capacitance to ground
	devices  []netDevice
	pinNames []string // driven pin order; device.gatePin indexes this
	pinIdx   map[string]int
	zIdx     int // index of the cell output node
}

// gleak is a tiny leakage conductance from every solvable node to GND,
// keeping the DC operating point defined for floating internal nodes.
const gleak = 1e-9

// buildNetwork elaborates cell c under technology tc at the given
// temperature and supply, with an external capacitance load attached to Z.
func buildNetwork(c *cell.Cell, tc *tech.Tech, temp, vdd, load float64) (*network, error) {
	top := c.Topology()
	nw := &network{
		tc: tc, temp: temp, vdd: vdd,
		nodeIdx: map[string]int{},
		pinIdx:  map[string]int{},
	}
	for _, p := range c.Inputs {
		nw.pinIdx[p] = len(nw.pinNames)
		nw.pinNames = append(nw.pinNames, p)
	}
	// Solvable nodes: every topology net that is not a driven pin.
	for _, n := range top.Nets {
		if _, driven := nw.pinIdx[n]; driven {
			continue
		}
		nw.nodeIdx[n] = len(nw.nodes)
		nw.nodes = append(nw.nodes, n)
	}
	zi, ok := nw.nodeIdx[cell.Output]
	if !ok {
		return nil, fmt.Errorf("spice: cell %s has no output node", c.Name)
	}
	nw.zIdx = zi
	nw.caps = make([]float64, len(nw.nodes))

	chanIdx := func(name string) (int, error) {
		switch name {
		case cell.VDD:
			return railVDD, nil
		case cell.GND:
			return railGND, nil
		}
		if i, ok := nw.nodeIdx[name]; ok {
			return i, nil
		}
		return 0, fmt.Errorf("spice: channel terminal %q of cell %s is not a solvable node", name, c.Name)
	}

	for _, d := range top.Devices {
		w := d.W * tc.WminP
		if d.NMOS {
			w = d.W * tc.WminN
		}
		ai, err := chanIdx(d.A)
		if err != nil {
			return nil, err
		}
		bi, err := chanIdx(d.B)
		if err != nil {
			return nil, err
		}
		nd := netDevice{
			nmos:     d.NMOS,
			gateNode: -1,
			gatePin:  -1,
			a:        ai,
			b:        bi,
			gon:      1 / tc.RonAt(d.NMOS, w, temp, vdd),
			vt:       tc.Vt(d.NMOS, temp),
		}
		if pi, driven := nw.pinIdx[d.Gate]; driven {
			nd.gatePin = pi
		} else if gi, ok := nw.nodeIdx[d.Gate]; ok {
			nd.gateNode = gi
		} else {
			return nil, fmt.Errorf("spice: gate net %q of cell %s unknown", d.Gate, c.Name)
		}
		nw.devices = append(nw.devices, nd)
		// Junction caps at channel terminals.
		if ai >= 0 {
			nw.caps[ai] += tc.CjOf(w)
		}
		if bi >= 0 {
			nw.caps[bi] += tc.CjOf(w)
		}
		// Gate cap loads internal driver nets (driven pins are ideal
		// sources and absorb their own gate load).
		if nd.gateNode >= 0 {
			nw.caps[nd.gateNode] += tc.CgOf(w)
		}
	}
	// Wire cap on stage outputs; external load on Z.
	for _, st := range c.Stages {
		if i, ok := nw.nodeIdx[st.Out]; ok {
			nw.caps[i] += tc.Cw
		}
	}
	nw.caps[zi] += load
	// Guard: every node needs a nonzero capacitance for the integrator.
	for i, cp := range nw.caps {
		if cp <= 0 {
			nw.caps[i] = 1e-18
		}
	}
	return nw, nil
}

// conductance returns the channel conductance of d given the gate voltage
// and the two channel terminal voltages, using a clamped alpha-power-law
// activation above threshold.
func (nw *network) conductance(d *netDevice, vg, va, vb float64) float64 {
	var ov float64
	if d.nmos {
		vs := math.Min(va, vb)
		ov = vg - vs - d.vt
	} else {
		vs := math.Max(va, vb)
		ov = vs - vg - d.vt
	}
	if ov <= 0 {
		return 0
	}
	full := nw.vdd - d.vt
	if full < 0.05 {
		full = 0.05
	}
	x := ov / full
	if x > 1 {
		x = 1
	}
	return d.gon * math.Pow(x, nw.tc.Alpha)
}

// termVolt resolves a channel terminal index to a voltage.
func (nw *network) termVolt(idx int, v []float64) float64 {
	switch idx {
	case railVDD:
		return nw.vdd
	case railGND:
		return 0
	default:
		return v[idx]
	}
}

// assemble stamps the conductance matrix G and current vector I for the
// current voltage estimate v and pin voltages vp. The backward-Euler
// capacitor companions (C/dt terms) are added by the caller.
func (nw *network) assemble(v, vp []float64, G [][]float64, I []float64) {
	n := len(nw.nodes)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			G[i][j] = 0
		}
		I[i] = 0
		G[i][i] = gleak
	}
	for k := range nw.devices {
		d := &nw.devices[k]
		var vg float64
		if d.gatePin >= 0 {
			vg = vp[d.gatePin]
		} else {
			vg = v[d.gateNode]
		}
		va := nw.termVolt(d.a, v)
		vb := nw.termVolt(d.b, v)
		g := nw.conductance(d, vg, va, vb)
		if num.IsZero(g) {
			continue
		}
		stamp := func(i, j int) {
			// conductance between terminals i and j (either may be a rail)
			if i >= 0 {
				G[i][i] += g
				if j >= 0 {
					G[i][j] -= g
				} else {
					I[i] += g * nw.termVolt(j, v)
				}
			}
		}
		stamp(d.a, d.b)
		stamp(d.b, d.a)
	}
}

// solveLinear solves G x = I in place by Gaussian elimination with
// partial pivoting. G and I are destroyed.
func solveLinear(G [][]float64, I []float64) ([]float64, error) {
	n := len(I)
	for col := 0; col < n; col++ {
		// pivot
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(G[r][col]) > math.Abs(G[p][col]) {
				p = r
			}
		}
		if math.Abs(G[p][col]) < 1e-30 {
			return nil, fmt.Errorf("spice: singular conductance matrix at column %d", col)
		}
		G[col], G[p] = G[p], G[col]
		I[col], I[p] = I[p], I[col]
		inv := 1 / G[col][col]
		for r := col + 1; r < n; r++ {
			f := G[r][col] * inv
			if num.IsZero(f) {
				continue
			}
			for c := col; c < n; c++ {
				G[r][c] -= f * G[col][c]
			}
			I[r] -= f * I[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := I[r]
		for c := r + 1; c < n; c++ {
			sum -= G[r][c] * x[c]
		}
		x[r] = sum / G[r][r]
	}
	return x, nil
}

// dcSolve finds the operating point for fixed pin voltages vp by damped
// fixed-point iteration on the nonlinear conductances.
func (nw *network) dcSolve(vp []float64) ([]float64, error) {
	n := len(nw.nodes)
	v := make([]float64, n)
	// Start mid-rail to give the activation functions a gradient.
	for i := range v {
		v[i] = nw.vdd / 2
	}
	G := newMatrix(n)
	I := make([]float64, n)
	for iter := 0; iter < 60; iter++ {
		nw.assemble(v, vp, G, I)
		x, err := solveLinear(G, I)
		if err != nil {
			return nil, err
		}
		delta := 0.0
		for i := range v {
			d := x[i] - v[i]
			if math.Abs(d) > delta {
				delta = math.Abs(d)
			}
			v[i] += 0.7 * d // damping for stable convergence
		}
		if delta < 1e-6 {
			break
		}
	}
	return v, nil
}

func newMatrix(n int) [][]float64 {
	m := make([][]float64, n)
	buf := make([]float64, n*n)
	for i := range m {
		m[i] = buf[i*n : (i+1)*n]
	}
	return m
}
