package liberty

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"tpsta/internal/cell"
	"tpsta/internal/charlib"
	"tpsta/internal/num"
	"tpsta/internal/tech"
)

var cachedLib *charlib.Library

func smallLib(t *testing.T) *charlib.Library {
	t.Helper()
	if cachedLib != nil {
		return cachedLib
	}
	tc, err := tech.ByName("130nm")
	if err != nil {
		t.Fatal(err)
	}
	l, err := charlib.Characterize(tc, cell.Default(), charlib.TestGrid(), charlib.Options{
		Cells: []string{"INV", "NAND2", "AO22", "XOR2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	cachedLib = l
	return l
}

func export(t *testing.T) string {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, smallLib(t), cell.Default()); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestWriteBasics(t *testing.T) {
	out := export(t)
	for _, want := range []string{
		"library (tpsta_130nm)",
		"cell (AO22)",
		"cell (INV)",
		"function : \"(A*B)+(C*D)\"",
		"timing_sense : positive_unate",
		"cell_rise", "fall_transition",
		"related_pin : \"A\"",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q", want)
		}
	}
	// The NLDM-gap comment is present.
	if !strings.Contains(out, "polynomial") {
		t.Error("missing provenance comment")
	}
}

func TestTimingSense(t *testing.T) {
	lib := cell.Default()
	if got := timingSense(lib.MustGet("AND2"), "A"); got != "positive_unate" {
		t.Errorf("AND2/A sense = %s", got)
	}
	if got := timingSense(lib.MustGet("NAND2"), "A"); got != "negative_unate" {
		t.Errorf("NAND2/A sense = %s", got)
	}
	if got := timingSense(lib.MustGet("XOR2"), "A"); got != "non_unate" {
		t.Errorf("XOR2/A sense = %s", got)
	}
	if got := timingSense(lib.MustGet("AO22"), "C"); got != "positive_unate" {
		t.Errorf("AO22/C sense = %s", got)
	}
}

func TestParseRoundTrip(t *testing.T) {
	out := export(t)
	g, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if g.Kind != "library" || len(g.Args) != 1 || g.Args[0] != "tpsta_130nm" {
		t.Fatalf("library header: %s %v", g.Kind, g.Args)
	}
	if g.Attr("delay_model") != "table_lookup" {
		t.Errorf("delay_model = %q", g.Attr("delay_model"))
	}
	// Cells present.
	for _, name := range []string{"INV", "NAND2", "AO22", "XOR2"} {
		if g.Find("cell", name) == nil {
			t.Errorf("cell %s missing after reparse", name)
		}
	}
	// Pin capacitance round-trips numerically (fF).
	ao22 := g.Find("cell", "AO22")
	pinA := ao22.Find("pin", "A")
	if pinA == nil {
		t.Fatal("AO22 pin A missing")
	}
	caps, err := pinA.Floats("capacitance")
	if err != nil || len(caps) != 1 {
		t.Fatalf("capacitance: %v %v", caps, err)
	}
	want, _ := smallLib(t).InputCap("AO22", "A")
	if math.Abs(caps[0]-want*1e15)/(want*1e15) > 1e-4 {
		t.Errorf("capacitance %.6f fF, want %.6f", caps[0], want*1e15)
	}
	// A delay table round-trips: compare the first value of INV's
	// cell_fall (input A rising → output falls) against the LUT.
	inv := g.Find("cell", "INV")
	z := inv.Find("pin", "Z")
	if z == nil {
		t.Fatal("INV pin Z missing")
	}
	timing := z.Find("timing", "")
	if timing == nil {
		t.Fatal("INV timing missing")
	}
	fall := timing.Find("cell_fall", "tpsta_template")
	if fall == nil {
		t.Fatal("cell_fall missing")
	}
	vals, err := fall.Floats("values")
	if err != nil || len(vals) == 0 {
		t.Fatalf("values: %v %v", vals, err)
	}
	arc := smallLib(t).LUT[charlib.LUTKey("INV", "A", true)]
	// First emitted value = row slew[0], col load[0].
	want0 := arc.Delay.Values[0][0] * 1e12
	if math.Abs(vals[0]-want0) > 1e-3 {
		t.Errorf("first table value %.4f, want %.4f", vals[0], want0)
	}
	// index axes round-trip too.
	idx2, err := fall.Floats("index_2")
	if err != nil || len(idx2) != len(arc.Delay.Loads) {
		t.Fatalf("index_2: %v %v", idx2, err)
	}
	if math.Abs(idx2[0]-arc.Delay.Loads[0]*1e15) > 1e-4 {
		t.Errorf("index_2[0] = %v", idx2[0])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"not a library", "cell (x) { }"},
		{"unterminated group", "library (l) { cell (x) {"},
		{"unterminated string", `library (l) { a : "x; }`},
		{"unterminated comment", "library (l) { /* }"},
		{"garbage member", "library (l) { cell x; }"},
		{"eof", ""},
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c.src)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestGroupHelpers(t *testing.T) {
	src := `library (l) {
	  a : 1;
	  nums (1, 2, 3);
	  cell (x) { k : v; }
	  cell (y) { }
	}`
	g, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.Attr("a") != "1" || g.Attr("zz") != "" {
		t.Error("Attr")
	}
	ns, err := g.Floats("nums")
	if err != nil || len(ns) != 3 || !num.Eq(ns[2], 3) {
		t.Errorf("Floats: %v %v", ns, err)
	}
	if _, err := g.Floats("zz"); err == nil {
		t.Error("Floats of missing attr should fail")
	}
	if len(g.FindAll("cell")) != 2 {
		t.Error("FindAll")
	}
	if g.Find("cell", "y") == nil || g.Find("cell", "q") != nil {
		t.Error("Find")
	}
	if g.Find("cell", "x").Attr("k") != "v" {
		t.Error("nested attr")
	}
}
