package liberty

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Group is one parsed Liberty group: `kind (args) { attrs... groups... }`.
type Group struct {
	Kind string
	Args []string
	// Attrs maps attribute name to its value tokens. Simple attributes
	// (`a : v;`) store one value; parenthesized attributes
	// (`a (v1, v2);`) store the argument list.
	Attrs map[string][]string
	// Groups holds nested groups in order.
	Groups []*Group
}

// Find returns the first nested group of the kind whose first argument
// matches arg ("" matches any).
func (g *Group) Find(kind, arg string) *Group {
	for _, sub := range g.Groups {
		if sub.Kind != kind {
			continue
		}
		if arg == "" || (len(sub.Args) > 0 && sub.Args[0] == arg) {
			return sub
		}
	}
	return nil
}

// FindAll returns all nested groups of the kind.
func (g *Group) FindAll(kind string) []*Group {
	var out []*Group
	for _, sub := range g.Groups {
		if sub.Kind == kind {
			out = append(out, sub)
		}
	}
	return out
}

// Attr returns the single value of a simple attribute ("" if absent).
func (g *Group) Attr(name string) string {
	vs := g.Attrs[name]
	if len(vs) == 0 {
		return ""
	}
	return vs[0]
}

// Floats parses an attribute's values (possibly one quoted
// comma-separated string) as floats.
func (g *Group) Floats(name string) ([]float64, error) {
	vs, ok := g.Attrs[name]
	if !ok {
		return nil, fmt.Errorf("liberty: missing attribute %s", name)
	}
	var out []float64
	for _, v := range vs {
		for _, f := range strings.Split(v, ",") {
			f = strings.TrimSpace(f)
			if f == "" {
				continue
			}
			x, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("liberty: bad number %q in %s", f, name)
			}
			out = append(out, x)
		}
	}
	return out, nil
}

// Parse reads a Liberty file and returns its top-level library group.
func Parse(r io.Reader) (*Group, error) {
	src, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	lx := &libLexer{src: string(src), line: 1}
	toks, err := lx.run()
	if err != nil {
		return nil, err
	}
	p := &libParser{toks: toks}
	g, err := p.group()
	if err != nil {
		return nil, err
	}
	if g.Kind != "library" {
		return nil, fmt.Errorf("liberty: top-level group is %q, want library", g.Kind)
	}
	return g, nil
}

type libToken struct {
	text string
	str  bool // was a quoted string
	line int
}

type libLexer struct {
	src  string
	pos  int
	line int
}

func (l *libLexer) run() ([]libToken, error) {
	var toks []libToken
	n := len(l.src)
	for l.pos < n {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r' || c == '\\':
			l.pos++
		case c == '/' && l.pos+1 < n && l.src[l.pos+1] == '*':
			l.pos += 2
			for l.pos+1 < n && !(l.src[l.pos] == '*' && l.src[l.pos+1] == '/') {
				if l.src[l.pos] == '\n' {
					l.line++
				}
				l.pos++
			}
			if l.pos+1 >= n {
				return nil, fmt.Errorf("liberty: unterminated comment at line %d", l.line)
			}
			l.pos += 2
		case c == '/' && l.pos+1 < n && l.src[l.pos+1] == '/':
			for l.pos < n && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '"':
			j := l.pos + 1
			for j < n && l.src[j] != '"' {
				if l.src[j] == '\n' {
					l.line++
				}
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("liberty: unterminated string at line %d", l.line)
			}
			toks = append(toks, libToken{l.src[l.pos+1 : j], true, l.line})
			l.pos = j + 1
		case strings.ContainsRune("(){}:;,", rune(c)):
			toks = append(toks, libToken{string(c), false, l.line})
			l.pos++
		default:
			j := l.pos
			for j < n && !strings.ContainsRune("(){}:;,\" \t\r\n", rune(l.src[j])) {
				j++
			}
			if j == l.pos {
				return nil, fmt.Errorf("liberty: unexpected character %q at line %d", c, l.line)
			}
			toks = append(toks, libToken{l.src[l.pos:j], false, l.line})
			l.pos = j
		}
	}
	return toks, nil
}

type libParser struct {
	toks []libToken
	pos  int
}

func (p *libParser) peek() libToken {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return libToken{line: -1}
}

func (p *libParser) next() libToken {
	t := p.peek()
	p.pos++
	return t
}

func (p *libParser) expect(text string) error {
	t := p.next()
	if t.text != text || t.str {
		return fmt.Errorf("liberty: expected %q, got %q at line %d", text, t.text, t.line)
	}
	return nil
}

// group parses `kind (args) { body }`.
func (p *libParser) group() (*Group, error) {
	kind := p.next()
	if kind.text == "" && kind.line == -1 {
		return nil, fmt.Errorf("liberty: unexpected end of file")
	}
	return p.groupBody(kind.text)
}

// groupBody parses `(args) { body }` for a kind token the caller already
// consumed.
func (p *libParser) groupBody(kind string) (*Group, error) {
	g := &Group{Kind: kind, Attrs: map[string][]string{}}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	for {
		t := p.next()
		if t.text == ")" && !t.str {
			break
		}
		if t.text == "," && !t.str {
			continue
		}
		if t.line == -1 {
			return nil, fmt.Errorf("liberty: unterminated argument list of %s", g.Kind)
		}
		g.Args = append(g.Args, t.text)
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		switch {
		case t.line == -1:
			return nil, fmt.Errorf("liberty: unterminated group %s", g.Kind)
		case t.text == "}" && !t.str:
			p.next()
			// Optional trailing semicolon after a group.
			if nt := p.peek(); nt.text == ";" && !nt.str {
				p.next()
			}
			return g, nil
		default:
			if err := p.member(g); err != nil {
				return nil, err
			}
		}
	}
}

// member parses one attribute or nested group inside a body.
func (p *libParser) member(g *Group) error {
	name := p.next()
	sep := p.peek()
	switch {
	case sep.text == ":" && !sep.str:
		p.next()
		var vals []string
		for {
			v := p.next()
			if v.line == -1 {
				return fmt.Errorf("liberty: unterminated attribute %s", name.text)
			}
			if v.text == ";" && !v.str {
				break
			}
			vals = append(vals, v.text)
		}
		g.Attrs[name.text] = vals
		return nil
	case sep.text == "(" && !sep.str:
		// Either a parenthesized attribute `a (v...);` or a nested group
		// `a (v...) { ... }`. Scan ahead for what follows ')'.
		save := p.pos
		p.next() // consume '('
		var args []string
		for {
			t := p.next()
			if t.line == -1 {
				return fmt.Errorf("liberty: unterminated parenthesis after %s", name.text)
			}
			if t.text == ")" && !t.str {
				break
			}
			if t.text == "," && !t.str {
				continue
			}
			args = append(args, t.text)
		}
		nt := p.peek()
		if nt.text == "{" && !nt.str {
			p.pos = save
			sub, err := p.groupBody(name.text)
			if err != nil {
				return err
			}
			g.Groups = append(g.Groups, sub)
			return nil
		}
		if nt.text == ";" && !nt.str {
			p.next()
		}
		g.Attrs[name.text] = args
		return nil
	default:
		return fmt.Errorf("liberty: expected ':' or '(' after %q at line %d", name.text, name.line)
	}
}
