// Package liberty writes (and re-reads) the characterized library in the
// Liberty (.lib) standard-cell interchange format — the format real STA
// tools consume. The export covers the NLDM view of the library: per-pin
// capacitances, functions, and the delay/transition tables of the default
// sensitization vector. It is deliberately the *vector-blind* view: the
// per-vector polynomial models of the paper's tool have no Liberty
// representation, which is precisely the gap the paper identifies in
// commercial flows (a comment in the emitted file says so).
//
// The reader accepts the subset the writer produces (plus whitespace,
// comment and ordering freedom) — enough for round-trip tests and for
// inspecting exported libraries.
package liberty

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"tpsta/internal/cell"
	"tpsta/internal/charlib"
	"tpsta/internal/expr"
	"tpsta/internal/lut"
)

// Write emits lib as a Liberty library named "tpsta_<tech>". Times are
// picoseconds, capacitances femtofarads.
func Write(w io.Writer, lib *charlib.Library, cells *cell.Lib) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "/* exported by tpsta; NLDM view only — per-vector polynomial\n")
	fmt.Fprintf(bw, "   models (the paper's contribution) have no Liberty equivalent. */\n")
	fmt.Fprintf(bw, "library (tpsta_%s) {\n", sanitize(lib.TechName))
	fmt.Fprintf(bw, "  time_unit : \"1ps\";\n")
	fmt.Fprintf(bw, "  capacitive_load_unit (1, ff);\n")
	fmt.Fprintf(bw, "  delay_model : table_lookup;\n")

	names := make([]string, 0, len(lib.CinRef))
	for n := range lib.CinRef {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, cellName := range names {
		c, err := cells.Get(cellName)
		if err != nil {
			return err
		}
		if err := writeCell(bw, lib, c); err != nil {
			return err
		}
	}
	fmt.Fprintf(bw, "}\n")
	return bw.Flush()
}

func writeCell(bw *bufio.Writer, lib *charlib.Library, c *cell.Cell) error {
	fmt.Fprintf(bw, "  cell (%s) {\n", c.Name)
	for _, pin := range c.Inputs {
		cap, err := lib.InputCap(c.Name, pin)
		if err != nil {
			return err
		}
		fmt.Fprintf(bw, "    pin (%s) {\n", pin)
		fmt.Fprintf(bw, "      direction : input;\n")
		fmt.Fprintf(bw, "      capacitance : %.6f;\n", cap*1e15)
		fmt.Fprintf(bw, "    }\n")
	}
	fmt.Fprintf(bw, "    pin (%s) {\n", cell.Output)
	fmt.Fprintf(bw, "      direction : output;\n")
	fmt.Fprintf(bw, "      function : \"%s\";\n", libertyFunction(c.Function))
	for _, pin := range c.Inputs {
		if err := writeTiming(bw, lib, c, pin); err != nil {
			return err
		}
	}
	fmt.Fprintf(bw, "    }\n")
	fmt.Fprintf(bw, "  }\n")
	return nil
}

// timingSense classifies the output's monotonicity in pin.
func timingSense(c *cell.Cell, pin string) string {
	vars := c.Inputs
	idx := -1
	for i, p := range vars {
		if p == pin {
			idx = i
		}
	}
	tt := expr.TruthTable(c.Function, vars)
	pos, neg := true, true
	for r := range tt {
		if r>>idx&1 == 1 {
			continue
		}
		lo, hi := tt[r], tt[r|1<<idx]
		if lo && !hi {
			pos = false
		}
		if !lo && hi {
			neg = false
		}
	}
	switch {
	case pos && !neg:
		return "positive_unate"
	case neg && !pos:
		return "negative_unate"
	default:
		return "non_unate"
	}
}

func writeTiming(bw *bufio.Writer, lib *charlib.Library, c *cell.Cell, pin string) error {
	vecs := c.Vectors(pin)
	if len(vecs) == 0 {
		return nil // untestable pin: no timing arc
	}
	fmt.Fprintf(bw, "      timing () {\n")
	fmt.Fprintf(bw, "        related_pin : \"%s\";\n", pin)
	fmt.Fprintf(bw, "        timing_sense : %s;\n", timingSense(c, pin))
	// Output-rise tables come from whichever input edge yields a rising
	// output under the default vector (and symmetrically for fall).
	for _, outRising := range []bool{true, false} {
		inRising, ok := inputEdgeFor(c, vecs[0], outRising)
		if !ok {
			continue
		}
		arc, ok := lutArc(lib, c.Name, pin, inRising)
		if !ok {
			continue
		}
		kind, tkind := "cell_rise", "rise_transition"
		if !outRising {
			kind, tkind = "cell_fall", "fall_transition"
		}
		writeTable(bw, kind, arc.Delay)
		writeTable(bw, tkind, arc.Slew)
	}
	fmt.Fprintf(bw, "      }\n")
	return nil
}

// inputEdgeFor finds the input edge producing the wanted output edge.
func inputEdgeFor(c *cell.Cell, vec cell.Vector, outRising bool) (bool, bool) {
	for _, inRising := range []bool{true, false} {
		if got, ok := c.OutputEdge(vec, inRising); ok && got == outRising {
			return inRising, true
		}
	}
	return false, false
}

func lutArc(lib *charlib.Library, cellName, pin string, rising bool) (*lut.Arc, bool) {
	arc, ok := lib.LUT[charlib.LUTKey(cellName, pin, rising)]
	return arc, ok
}

func writeTable(bw *bufio.Writer, kind string, t *lut.Table) {
	fmt.Fprintf(bw, "        %s (tpsta_template) {\n", kind)
	fmt.Fprintf(bw, "          index_1 (\"%s\");\n", joinScaled(t.Slews, 1e12))
	fmt.Fprintf(bw, "          index_2 (\"%s\");\n", joinScaled(t.Loads, 1e15))
	// values: one row per index_1 (slew), columns over index_2 (load);
	// the internal body is [load][slew], so transpose on the way out.
	rows := make([]string, len(t.Slews))
	for j := range t.Slews {
		cols := make([]string, len(t.Loads))
		for i := range t.Loads {
			cols[i] = fmt.Sprintf("%.4f", t.Values[i][j]*1e12)
		}
		rows[j] = strings.Join(cols, ", ")
	}
	fmt.Fprintf(bw, "          values (\"%s\");\n", strings.Join(rows, "\", \""))
	fmt.Fprintf(bw, "        }\n")
}

func joinScaled(xs []float64, scale float64) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprintf("%.4f", x*scale)
	}
	return strings.Join(parts, ", ")
}

// libertyFunction renders the cell function in Liberty boolean syntax.
func libertyFunction(e expr.Node) string {
	switch n := e.(type) {
	case expr.Var:
		return n.Name
	case expr.Const:
		if n.Val {
			return "1"
		}
		return "0"
	case expr.Not:
		return "!" + libertyFunction(n.X)
	case expr.And:
		parts := make([]string, len(n.Xs))
		for i, x := range n.Xs {
			parts[i] = maybeParen(x)
		}
		return strings.Join(parts, "*")
	case expr.Or:
		parts := make([]string, len(n.Xs))
		for i, x := range n.Xs {
			parts[i] = maybeParen(x)
		}
		return strings.Join(parts, "+")
	case expr.Xor:
		return maybeParen(n.A) + "^" + maybeParen(n.B)
	default:
		return "?"
	}
}

func maybeParen(e expr.Node) string {
	switch e.(type) {
	case expr.Var, expr.Const, expr.Not:
		return libertyFunction(e)
	default:
		return "(" + libertyFunction(e) + ")"
	}
}

func sanitize(s string) string {
	out := []rune(s)
	for i, r := range out {
		ok := r == '_' || (r >= '0' && r <= '9') || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !ok {
			out[i] = '_'
		}
	}
	return string(out)
}
