// Command eco runs timing-driven gate sizing: block-based STA against a
// clock period, then iterative upsizing of critical gates (X2 drive
// variants) with incremental re-analysis until timing is met.
//
// Usage:
//
//	eco -circuit c432 -tech 130nm -period 2.5ns
//	eco -circuit c880 -period 0            # 0 = 7% below the unconstrained arrival
package main

import (
	"flag"
	"fmt"
	"os"

	"tpsta/internal/block"
	"tpsta/internal/cell"
	"tpsta/internal/charlib"
	"tpsta/internal/circuits"
	"tpsta/internal/eco"
	"tpsta/internal/obs"
	"tpsta/internal/tech"
)

func main() {
	var (
		circuitName = flag.String("circuit", "c432", "built-in circuit name")
		techName    = flag.String("tech", "130nm", "technology: 130nm, 90nm or 65nm")
		period      = flag.Duration("period", 0, "clock period (0: 7% below the unconstrained worst arrival)")
		maxMoves    = flag.Int("max-moves", 50, "resizing budget")
		quickChar   = flag.Bool("quick-char", true, "characterize on the reduced grid")
	)
	flag.Parse()
	if err := run(*circuitName, *techName, period.Seconds(), *maxMoves, *quickChar); err != nil {
		fmt.Fprintln(os.Stderr, "eco:", err)
		os.Exit(1)
	}
}

func run(circuitName, techName string, period float64, maxMoves int, quickChar bool) error {
	tc, err := tech.ByName(techName)
	if err != nil {
		return err
	}
	cir, err := circuits.Get(circuitName)
	if err != nil {
		return err
	}
	grid := charlib.NominalGrid()
	if quickChar {
		grid = charlib.TestGrid()
	}
	phases := &obs.Phases{}
	fmt.Printf("characterizing %s library with drive variants...\n", tc.Name)
	stopChar := phases.Start("characterize")
	lib, err := charlib.Characterize(tc, cell.Extended(), grid, charlib.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("characterized %d arcs in %.1fs\n", len(lib.Poly), stopChar().Seconds())

	if period <= 0 {
		base, err := block.New(cir, tc, lib, block.Options{}).Run()
		if err != nil {
			return err
		}
		period = base.WorstArrival * 0.93
		fmt.Printf("no period given: targeting %.1f ps (7%% below the unconstrained arrival)\n", period*1e12)
	}

	stopOpt := phases.Start("optimize")
	res, err := eco.Optimize(cir, tc, lib, eco.Options{ClockPeriod: period, MaxMoves: maxMoves})
	if err != nil {
		return err
	}
	fmt.Printf("\noptimized in %.2fs\n", stopOpt().Seconds())
	fmt.Printf("worst slack: %.2f ps → %.2f ps (met=%v)\n",
		res.SlackBefore*1e12, res.SlackAfter*1e12, res.Met)
	fmt.Printf("area cost: +%.2f%% input capacitance, %d moves:\n", res.AreaCostFrac*100, len(res.Moves))
	for i, m := range res.Moves {
		fmt.Printf("  %2d. %-10s %-10s → %-12s slack %.2f ps\n", i+1, m.Gate, m.From, m.To, m.SlackAfter*1e12)
	}
	return nil
}
