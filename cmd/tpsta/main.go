// Command tpsta runs the true-path STA engine on a circuit: it loads (or
// characterizes) a technology library, enumerates true paths with
// exhaustive sensitization-vector exploration, and prints the K worst
// paths with their vectors, input cubes and polynomial-model delays.
//
// Usage:
//
//	tpsta -circuit c432 -tech 130nm -k 10
//	tpsta -bench my.bench -lib lib130.json -k 25 -complex-only
//	tpsta -verilog my.v -outputs z1,z2 -report          # cone + per-gate report
//	tpsta -circuit c880 -robust -tests tests.txt        # robust two-pattern tests
//	tpsta -circuit c17 -sdf c17.sdf                     # SDF annotation only
//	tpsta -circuit c432 -dot crit.dot                   # Graphviz with worst path
//	tpsta -circuit c432 -stats run.json -progress       # machine-readable run report
//	tpsta -circuit c432 -trace run.jsonl -pprof :6060   # search trace + live profiling
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"tpsta/internal/cell"
	"tpsta/internal/charlib"
	"tpsta/internal/circuits"
	"tpsta/internal/core"
	"tpsta/internal/netlist"
	"tpsta/internal/obs"
	"tpsta/internal/report"
	"tpsta/internal/sdf"
	"tpsta/internal/tech"
	"tpsta/internal/variation"
)

// config carries every CLI option through the run.
type config struct {
	circuitName string
	benchFile   string
	verilogFile string
	sdfFile     string
	testsFile   string
	dotFile     string
	coneOutputs string
	detail      bool
	robust      bool
	techName    string
	libFile     string
	k           int
	workers     int
	learn       bool
	complexOnly bool
	maxSteps    int64
	quickChar   bool
	structural  bool
	temp        float64 // -temp: junction temperature in °C
	vdd         float64 // -vdd: supply in volts (0 = technology nominal)
	corners     string  // -corners: multi-corner sweep specs

	statsFile   string // -stats: machine-readable run report (JSON)
	traceFile   string // -trace: structured search events (JSONL)
	traceSample int64  // -trace-sample: record every Nth search step
	progress    bool   // -progress: periodic stderr progress line
	pprofAddr   string // -pprof: expvar + pprof HTTP endpoint
	metricsAddr string // -metrics-addr: OpenMetrics /metrics endpoint
}

func main() {
	var cfg config
	flag.StringVar(&cfg.circuitName, "circuit", "c17", "built-in circuit name (see -list)")
	flag.StringVar(&cfg.benchFile, "bench", "", "path to a .bench netlist (overrides -circuit)")
	flag.StringVar(&cfg.verilogFile, "verilog", "", "path to a structural Verilog netlist (overrides -circuit)")
	flag.StringVar(&cfg.sdfFile, "sdf", "", "write SDF delay annotations for the circuit and exit")
	flag.StringVar(&cfg.testsFile, "tests", "", "also write two-pattern path-delay tests for the reported paths")
	flag.StringVar(&cfg.dotFile, "dot", "", "also write a Graphviz view with the worst path highlighted")
	flag.BoolVar(&cfg.detail, "report", false, "print a per-gate timing report for each path")
	flag.StringVar(&cfg.coneOutputs, "outputs", "", "comma-separated outputs: restrict analysis to their fanin cone")
	flag.BoolVar(&cfg.robust, "robust", false, "conservatively robust sensitization (steady side inputs)")
	flag.StringVar(&cfg.techName, "tech", "130nm", "technology: 130nm, 90nm or 65nm")
	flag.StringVar(&cfg.libFile, "lib", "", "characterized library JSON (default: characterize now)")
	flag.IntVar(&cfg.k, "k", 10, "number of worst paths to report")
	flag.IntVar(&cfg.workers, "workers", 0, "parallel search workers (0 = all CPUs, 1 = serial)")
	flag.BoolVar(&cfg.learn, "learn", false, "conflict-driven nogood learning (prunes re-discovered dead subtrees; identical paths)")
	flag.BoolVar(&cfg.complexOnly, "complex-only", false, "report only paths through multi-vector gates")
	flag.Int64Var(&cfg.maxSteps, "max-steps", 2_000_000, "search budget (sensitization attempts)")
	flag.BoolVar(&cfg.quickChar, "quick-char", false, "characterize on the reduced grid (faster startup)")
	flag.Float64Var(&cfg.temp, "temp", 25, "junction temperature in °C")
	flag.Float64Var(&cfg.vdd, "vdd", 0, "supply voltage in volts (0 = technology nominal)")
	flag.StringVar(&cfg.corners, "corners", "", "batch multi-corner sweep: comma-separated slow|typ|fast names and/or TEMP:VDD pairs (e.g. slow,typ,fast or 125:1.08,-40:1.32)")
	flag.BoolVar(&cfg.structural, "structural", false, "skip delay models (order paths by length)")
	flag.StringVar(&cfg.statsFile, "stats", "", "write a machine-readable run report (JSON) to this file")
	flag.StringVar(&cfg.traceFile, "trace", "", "write structured search events (JSONL) to this file")
	flag.Int64Var(&cfg.traceSample, "trace-sample", 0, "with -trace, also record every Nth search step (0 = off)")
	flag.BoolVar(&cfg.progress, "progress", false, "print a periodic search progress line to stderr")
	flag.StringVar(&cfg.pprofAddr, "pprof", "", "serve expvar and pprof on this address (e.g. :6060)")
	flag.StringVar(&cfg.metricsAddr, "metrics-addr", "", "serve OpenMetrics text on this address at /metrics (e.g. :9090)")
	list := flag.Bool("list", false, "list built-in circuits and exit")
	flag.Parse()
	if *list {
		for _, n := range circuits.Names() {
			fmt.Println(n)
		}
		return
	}
	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tpsta:", err)
		os.Exit(1)
	}
}

// statsReport is the -stats JSON schema (documented in README.md).
type statsReport struct {
	Tool    string `json:"tool"`
	Circuit struct {
		Name         string `json:"name"`
		Inputs       int    `json:"inputs"`
		Outputs      int    `json:"outputs"`
		Gates        int    `json:"gates"`
		Depth        int    `json:"depth"`
		ComplexGates int    `json:"complexGates"`
	} `json:"circuit"`
	Options struct {
		Tech        string `json:"tech"`
		K           int    `json:"k"`
		MaxSteps    int64  `json:"maxSteps"`
		Workers     int    `json:"workers"`
		Robust      bool   `json:"robust"`
		ComplexOnly bool   `json:"complexOnly"`
		Structural  bool   `json:"structural"`
		Learning    bool   `json:"learning"`
	} `json:"options"`
	PhaseSeconds map[string]float64 `json:"phaseSeconds"`
	Search       core.SearchStats   `json:"search"`
	Result       struct {
		Paths              int     `json:"paths"`
		Courses            int     `json:"courses"`
		MultiVectorCourses int     `json:"multiVectorCourses"`
		Truncated          bool    `json:"truncated"`
		WorstDelayPs       float64 `json:"worstDelayPs"`
	} `json:"result"`
	Characterization *charlib.CharStats  `json:"characterization,omitempty"`
	Parallel         *core.ParallelStats `json:"parallel,omitempty"`
	Kernels          *core.KernelStats   `json:"kernels,omitempty"`
	Learn            *core.LearnStats    `json:"learn,omitempty"`
	// Corners is the per-corner table of a -corners sweep, in sweep
	// order; absent on single-corner runs.
	Corners []core.CornerStats `json:"corners,omitempty"`
}

func run(cfg config, out io.Writer) error {
	phases := &obs.Phases{}

	// Open the stats file up front: a typo'd path must not surface only
	// after characterization and search have already been paid for.
	var statsOut *os.File
	if cfg.statsFile != "" {
		f, err := os.Create(cfg.statsFile)
		if err != nil {
			return err
		}
		defer f.Close()
		statsOut = f
	}

	// The tracer opens before any phase runs so load and
	// characterization get spans under the root "run" span, not just
	// the search.
	var tracer *obs.JSONL
	var tr obs.Tracer // nil interface when tracing is off
	if cfg.traceFile != "" {
		f, err := os.Create(cfg.traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		tracer = obs.NewJSONL(f)
		tr = tracer
	}
	runSpan := obs.StartSpan(tr, 0, "run")

	var eng *core.Engine
	if cfg.metricsAddr != "" {
		addr, err := obs.ServeMetrics(cfg.metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics server: %w", err)
		}
		fmt.Fprintf(os.Stderr, "OpenMetrics endpoint on http://%s/metrics\n", addr)
	}
	if cfg.pprofAddr != "" {
		addr, err := obs.ServeDebug(cfg.pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof server: %w", err)
		}
		fmt.Fprintf(os.Stderr, "debug endpoints on http://%s/debug/pprof/ and /debug/vars\n", addr)
		// Published before the engine exists so the var is visible for
		// the whole run (zero stats until the search finishes).
		obs.Publish("tpsta.search", func() any {
			if eng == nil {
				return core.SearchStats{}
			}
			return eng.Stats()
		})
		obs.Publish("tpsta.parallel", func() any {
			if eng == nil {
				return core.ParallelStats{}
			}
			return eng.ParallelStats()
		})
		obs.Publish("tpsta.kernels", func() any {
			if eng == nil {
				return core.KernelStats{}
			}
			return eng.KernelStats()
		})
		obs.Publish("tpsta.learn", func() any {
			if eng == nil {
				return core.LearnStats{}
			}
			return eng.LearnStats()
		})
	}

	tc, err := tech.ByName(cfg.techName)
	if err != nil {
		return err
	}
	// Operating-point flags are validated before any load or
	// characterization work: a malformed corner spec must fail in
	// milliseconds, not after a minute of library sweeping.
	if math.IsNaN(cfg.temp) || math.IsInf(cfg.temp, 0) {
		return fmt.Errorf("-temp %v: temperature must be a finite value in °C", cfg.temp)
	}
	if math.IsNaN(cfg.vdd) || math.IsInf(cfg.vdd, 0) || cfg.vdd < 0 {
		return fmt.Errorf("-vdd %v: supply must be a positive voltage, or 0 for the %s nominal (%.2f V)", cfg.vdd, tc.Name, tc.VDD)
	}
	var cornerPts []core.OperatingPoint
	if cfg.corners != "" {
		cornerPts, err = parseCorners(cfg.corners, tc)
		if err != nil {
			return err
		}
	}
	stopLoad := phases.Start("load")
	loadSpan := obs.StartSpan(tr, runSpan.ID(), "load")
	var cir *netlist.Circuit
	if cfg.verilogFile != "" {
		f, err := os.Open(cfg.verilogFile)
		if err != nil {
			return err
		}
		defer f.Close()
		cir, err = netlist.ParseVerilog(cfg.verilogFile, f)
		if err != nil {
			return err
		}
	} else if cfg.benchFile != "" {
		f, err := os.Open(cfg.benchFile)
		if err != nil {
			return err
		}
		defer f.Close()
		cir, err = netlist.ParseExtendedBench(cfg.benchFile, f)
		if err != nil {
			return err
		}
	} else {
		cir, err = circuits.Get(cfg.circuitName)
		if err != nil {
			return err
		}
	}
	if cfg.coneOutputs != "" {
		var outs []string
		for _, o := range strings.Split(cfg.coneOutputs, ",") {
			outs = append(outs, strings.TrimSpace(o))
		}
		cone, err := netlist.ExtractCone(cir, cell.Default(), outs)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "restricted to the cone of %v: %d of %d gates\n", outs, len(cone.Gates), len(cir.Gates))
		cir = cone
	}
	loadSpan.End()
	stopLoad()

	st, err := cir.Stats()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s: %d inputs, %d outputs, %d gates (depth %d, %d complex)\n",
		st.Name, st.Inputs, st.Outputs, st.Gates, st.Depth, st.ComplexGates)

	var lib *charlib.Library
	var charStats *charlib.CharStats
	if cfg.structural {
		lib = nil
	} else if cfg.libFile != "" {
		f, err := os.Open(cfg.libFile)
		if err != nil {
			return err
		}
		lib, err = charlib.Load(f)
		f.Close()
		if err != nil {
			return err
		}
		if lib.TechName != tc.Name {
			return fmt.Errorf("library is for %s, not %s", lib.TechName, tc.Name)
		}
		if len(cornerPts) > 0 && (len(lib.Grid.Temp) < 2 || len(lib.Grid.VDDRel) < 2) {
			fmt.Fprintf(out, "warning: library characterized at nominal T/VDD only; every -corners point will report nominal delays\n")
		}
		fmt.Fprintf(out, "loaded %s\n", lib)
	} else {
		grid := charlib.NominalGrid()
		if cfg.quickChar {
			grid = charlib.TestGrid()
		}
		if len(cornerPts) > 0 {
			// A corner sweep needs models with live T/VDD terms, which
			// only the temperature and supply sweep provides.
			full := charlib.FullGrid()
			grid.Temp, grid.VDDRel = full.Temp, full.VDDRel
		}
		fmt.Fprintf(out, "characterizing %s library...\n", tc.Name)
		stopChar := phases.Start("characterize")
		charSpan := obs.StartSpan(tr, runSpan.ID(), "characterize")
		lib, err = charlib.Characterize(tc, cell.Default(), grid, charlib.Options{})
		if err != nil {
			return err
		}
		charSpan.End()
		d := stopChar()
		charStats = &lib.Stats
		fmt.Fprintf(out, "characterized %d arcs in %.1fs (%.0f%% worker utilization, %d fit solves)\n",
			len(lib.Poly), d.Seconds(), lib.Stats.Utilization*100, lib.Stats.FitSolves)
	}

	if cfg.sdfFile != "" {
		if lib == nil {
			return fmt.Errorf("-sdf needs a characterized library (omit -structural)")
		}
		f, err := os.Create(cfg.sdfFile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := sdf.Write(f, cir, tc, lib, sdf.Options{}); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", cfg.sdfFile)
		return nil
	}

	opts := core.Options{
		Workers: cfg.workers, ComplexOnly: cfg.complexOnly,
		MaxSteps: cfg.maxSteps, Robust: cfg.robust, Learning: cfg.learn,
		Temp: cfg.temp, VDD: cfg.vdd,
		Tracer: tr, TraceParent: runSpan.ID(), TraceSampleEvery: cfg.traceSample,
	}
	// Histograms are collected only when an endpoint can serve them:
	// the step clock reads are not free on an unobserved run.
	if cfg.metricsAddr != "" || cfg.pprofAddr != "" {
		opts.Metrics = &core.Metrics{}
	}
	if cfg.progress {
		pp := obs.NewPrinter(os.Stderr)
		opts.Progress = func(pi core.ProgressInfo) {
			pp.SetWorkers(pi.Workers)
			if pi.Done {
				pp.Done(pi.Steps, pi.Paths)
				return
			}
			pp.Update(pi.Steps, pi.MaxSteps, pi.Paths)
		}
	}

	eng = core.New(cir, tc, lib, opts)
	if opts.Metrics != nil {
		// The /metrics (and /debug) servers are already up; the engine's
		// source snapshots live counters at every scrape from here on.
		eng.RegisterMetrics("core")
	}
	// writeStats renders the -stats JSON for either search shape: a
	// single-corner Result, or a -corners sweep (res nil, mc set).
	writeStats := func(res *core.Result, mc *core.MultiCornerResult) error {
		if statsOut == nil {
			return nil
		}
		var sr statsReport
		sr.Tool = "tpsta"
		sr.Circuit.Name = st.Name
		sr.Circuit.Inputs = st.Inputs
		sr.Circuit.Outputs = st.Outputs
		sr.Circuit.Gates = st.Gates
		sr.Circuit.Depth = st.Depth
		sr.Circuit.ComplexGates = st.ComplexGates
		sr.Options.Tech = cfg.techName
		sr.Options.K = cfg.k
		sr.Options.MaxSteps = cfg.maxSteps
		sr.Options.Workers = cfg.workers
		sr.Options.Robust = cfg.robust
		sr.Options.ComplexOnly = cfg.complexOnly
		sr.Options.Structural = cfg.structural
		sr.Options.Learning = cfg.learn
		sr.PhaseSeconds = phases.Map()
		sr.Search = eng.Stats()
		if mc != nil {
			sr.Corners = mc.Stats
			sr.Result.Paths = len(mc.Cross)
			for _, cs := range mc.Stats {
				sr.Result.Truncated = sr.Result.Truncated || cs.Truncated
			}
			if len(mc.Cross) > 0 {
				cp := mc.Cross[0]
				sr.Result.WorstDelayPs = cp.Delays[cp.WorstCorner] * 1e12
			}
			if ps := mc.Parallel; ps.Workers > 1 {
				sr.Parallel = &ps
			}
		} else {
			sr.Result.Paths = len(res.Paths)
			sr.Result.Courses = res.Courses
			sr.Result.MultiVectorCourses = res.MultiVectorCourses
			sr.Result.Truncated = res.Truncated
			if len(res.Paths) > 0 {
				sr.Result.WorstDelayPs = res.Paths[0].WorstDelay() * 1e12
			}
			if ps := eng.ParallelStats(); ps.Workers > 1 {
				sr.Parallel = &ps
			}
		}
		sr.Characterization = charStats
		if ks := eng.KernelStats(); ks.Arcs > 0 {
			sr.Kernels = &ks
		}
		if cfg.learn {
			ls := eng.LearnStats()
			sr.Learn = &ls
		}
		buf, err := json.MarshalIndent(&sr, "", "  ")
		if err != nil {
			return err
		}
		if _, err := statsOut.Write(append(buf, '\n')); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote run report to %s\n", cfg.statsFile)
		return nil
	}

	if len(cornerPts) > 0 {
		stopSearch := phases.Start("search")
		mc, err := eng.MultiCornerKWorst(cornerPts, cfg.k)
		if err != nil {
			return err
		}
		searchDur := stopSearch()
		if ps := mc.Parallel; ps.Workers > 1 {
			fmt.Fprintf(os.Stderr, "parallel: %d workers over %d corner×shard units, %.0f%% pool utilization, %d shard + %d subtree steals\n",
				ps.Workers, ps.Units, ps.Utilization*100, ps.ShardSteals, ps.SubtreeSteals)
		}
		if err := printCornerReport(out, mc, searchDur.Seconds()); err != nil {
			return err
		}
		if err := writeStats(nil, mc); err != nil {
			return err
		}
		if tracer != nil {
			runSpan.End()
			if err := tracer.Flush(); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote search trace to %s (render it with cmd/obsreport)\n", cfg.traceFile)
		}
		return nil
	}
	stopSearch := phases.Start("search")
	res, err := eng.KWorst(cfg.k)
	if err != nil {
		return err
	}
	searchDur := stopSearch()
	if ps := eng.ParallelStats(); ps.Workers > 1 {
		fmt.Fprintf(os.Stderr, "parallel: %d workers over %d shards (%d units), %.0f%% pool utilization, %d shard + %d subtree steals, %d donations, %.2f balance\n",
			ps.Workers, ps.Shards, ps.Units, ps.Utilization*100,
			ps.ShardSteals, ps.SubtreeSteals, ps.Donations, ps.Balance)
	}
	if ks := eng.KernelStats(); ks.Arcs > 0 {
		fmt.Fprintf(os.Stderr, "kernels: %d arcs specialized (%d terms) in %.1fms, %d arc queries; pool %d kernels (%d terms, %d ops), %d batch rounds at %.0f%% fill\n",
			ks.Arcs, ks.Terms, ks.BuildSeconds*1e3, ks.ArcQueries,
			ks.PoolKernels, ks.PoolTerms, ks.PoolOps, ks.BatchRounds, ks.BatchFill*100)
	}
	if cfg.learn {
		ls := eng.LearnStats()
		fmt.Fprintf(os.Stderr, "learning: %d nogoods learned (%d conditions), %d subtree prunes, %d exported + %d imported, %d oversized + %d dropped\n",
			ls.Learned, ls.Conditions, ls.Hits, ls.Exported, ls.Imported, ls.Oversized, ls.Dropped)
	}
	if res.Truncated {
		fmt.Fprintf(os.Stderr, "warning: search truncated (%s) — results may be incomplete; raise -max-steps to search further\n",
			res.Truncation)
	}
	fmt.Fprintf(out, "search: %d steps in %.2fs (%d conflicts, %d backtracks, %d justification aborts)\n\n",
		res.Steps, searchDur.Seconds(), res.Stats.Conflicts, res.Stats.Backtracks, res.JustificationAborts)

	if cfg.testsFile != "" {
		f, err := os.Create(cfg.testsFile)
		if err != nil {
			return err
		}
		if err := core.WriteTestPairs(f, res.Paths); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d-path test set to %s\n", len(res.Paths), cfg.testsFile)
	}

	if cfg.dotFile != "" && len(res.Paths) > 0 {
		f, err := os.Create(cfg.dotFile)
		if err != nil {
			return err
		}
		if err := netlist.WriteDot(f, cir, res.Paths[0].Nodes); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s (worst path highlighted)\n", cfg.dotFile)
	}

	tb := report.New(fmt.Sprintf("%d worst true paths", len(res.Paths)),
		"#", "delay(ps)", "edge", "path [cell.pin#case]", "input cube")
	for i, p := range res.Paths {
		edge := "rise"
		if p.FallDelay >= p.RiseDelay {
			edge = "fall"
		}
		tb.Row(i+1, report.Ps(p.WorstDelay()), edge, p.String(), cubeString(p))
	}
	if err := tb.Render(out); err != nil {
		return err
	}
	if cfg.detail {
		for _, p := range res.Paths {
			rising := p.RiseOK
			if p.FallOK && p.FallDelay > p.RiseDelay {
				rising = false
			}
			if err := eng.WritePathReport(out, p, rising); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
	}

	if tracer != nil {
		runSpan.End()
		if err := tracer.Flush(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote search trace to %s (render it with cmd/obsreport)\n", cfg.traceFile)
	}

	if err := writeStats(res, nil); err != nil {
		return err
	}
	return nil
}

// parseCorners turns a -corners spec into absolute operating points.
// Each comma-separated field is either a standard corner name (slow,
// typ/typical, fast — resolved against the technology nominal supply
// exactly like variation.StandardCorners) or an explicit TEMP:VDD pair
// of a finite °C temperature and a positive absolute voltage.
func parseCorners(spec string, tc *tech.Tech) ([]core.OperatingPoint, error) {
	std := variation.StandardCorners()
	var pts []core.OperatingPoint
	for _, raw := range strings.Split(spec, ",") {
		field := strings.TrimSpace(raw)
		var named *variation.Corner
		switch strings.ToLower(field) {
		case "":
			return nil, fmt.Errorf("-corners %q: empty corner spec; want slow|typ|fast or TEMP:VDD", spec)
		case "slow":
			named = &std[0]
		case "typ", "typical":
			named = &std[1]
		case "fast":
			named = &std[2]
		}
		if named != nil {
			pt := variation.Points(tc, []variation.Corner{*named})[0]
			pt.Name = strings.ToLower(field)
			pts = append(pts, pt)
			continue
		}
		parts := strings.Split(field, ":")
		if len(parts) != 2 {
			return nil, fmt.Errorf("-corners: malformed corner %q; want slow|typ|fast or TEMP:VDD (e.g. 125:1.08)", field)
		}
		temp, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("-corners: corner %q: bad temperature: %w", field, err)
		}
		vdd, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("-corners: corner %q: bad supply: %w", field, err)
		}
		if math.IsNaN(temp) || math.IsInf(temp, 0) {
			return nil, fmt.Errorf("-corners: corner %q: temperature must be a finite value in °C", field)
		}
		if math.IsNaN(vdd) || math.IsInf(vdd, 0) || vdd <= 0 {
			return nil, fmt.Errorf("-corners: corner %q: supply must be a positive voltage in volts", field)
		}
		pts = append(pts, core.OperatingPoint{Temp: temp, VDD: vdd})
	}
	return pts, nil
}

// printCornerReport renders the per-corner summary and the
// cross-corner path table of a batch sweep.
func printCornerReport(out io.Writer, mc *core.MultiCornerResult, seconds float64) error {
	tb := report.New(fmt.Sprintf("corner summary (%d corners in %.2fs)", len(mc.Stats), seconds),
		"corner", "T(°C)", "VDD(V)", "build(ms)", "shared", "steps", "paths", "worst(ps)", "trunc")
	for _, cs := range mc.Stats {
		tb.Row(cs.Name, cs.Temp, cs.VDD, fmt.Sprintf("%.1f", cs.BuildSeconds*1e3),
			cs.SharedBuild, cs.Steps, cs.Paths, report.Ps(cs.WorstDelay), cs.Truncated)
	}
	if err := tb.Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out)
	cols := []string{"#", "worst@"}
	for _, cs := range mc.Stats {
		cols = append(cols, cs.Name+"(ps)")
	}
	cols = append(cols, "path [cell.pin#case]")
	xb := report.New(fmt.Sprintf("%d cross-corner paths", len(mc.Cross)), cols...)
	for i, cp := range mc.Cross {
		row := []interface{}{i + 1, mc.Stats[cp.WorstCorner].Name}
		for _, d := range cp.Delays {
			row = append(row, report.Ps(d))
		}
		row = append(row, cp.Path.String())
		xb.Row(row...)
	}
	return xb.Render(out)
}

func cubeString(p *core.TruePath) string {
	out := p.Start + "=T"
	for _, name := range sortedCubeKeys(p) {
		v := p.Cube[name]
		out += fmt.Sprintf(" %s=%s", name, v)
	}
	return out
}

func sortedCubeKeys(p *core.TruePath) []string {
	keys := make([]string, 0, len(p.Cube))
	for kname := range p.Cube {
		keys = append(keys, kname)
	}
	// Insertion sort keeps the helper dependency-free.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
