// Command tpsta runs the true-path STA engine on a circuit: it loads (or
// characterizes) a technology library, enumerates true paths with
// exhaustive sensitization-vector exploration, and prints the K worst
// paths with their vectors, input cubes and polynomial-model delays.
//
// Usage:
//
//	tpsta -circuit c432 -tech 130nm -k 10
//	tpsta -bench my.bench -lib lib130.json -k 25 -complex-only
//	tpsta -verilog my.v -outputs z1,z2 -report          # cone + per-gate report
//	tpsta -circuit c880 -robust -tests tests.txt        # robust two-pattern tests
//	tpsta -circuit c17 -sdf c17.sdf                     # SDF annotation only
//	tpsta -circuit c432 -dot crit.dot                   # Graphviz with worst path
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tpsta/internal/cell"
	"tpsta/internal/charlib"
	"tpsta/internal/circuits"
	"tpsta/internal/core"
	"tpsta/internal/netlist"
	"tpsta/internal/report"
	"tpsta/internal/sdf"
	"tpsta/internal/tech"
)

func main() {
	var (
		circuitName = flag.String("circuit", "c17", "built-in circuit name (see -list)")
		benchFile   = flag.String("bench", "", "path to a .bench netlist (overrides -circuit)")
		verilogFile = flag.String("verilog", "", "path to a structural Verilog netlist (overrides -circuit)")
		sdfFile     = flag.String("sdf", "", "write SDF delay annotations for the circuit and exit")
		testsFile   = flag.String("tests", "", "also write two-pattern path-delay tests for the reported paths")
		dotFile     = flag.String("dot", "", "also write a Graphviz view with the worst path highlighted")
		detail      = flag.Bool("report", false, "print a per-gate timing report for each path")
		coneOutputs = flag.String("outputs", "", "comma-separated outputs: restrict analysis to their fanin cone")
		robust      = flag.Bool("robust", false, "conservatively robust sensitization (steady side inputs)")
		techName    = flag.String("tech", "130nm", "technology: 130nm, 90nm or 65nm")
		libFile     = flag.String("lib", "", "characterized library JSON (default: characterize now)")
		k           = flag.Int("k", 10, "number of worst paths to report")
		complexOnly = flag.Bool("complex-only", false, "report only paths through multi-vector gates")
		maxSteps    = flag.Int64("max-steps", 2_000_000, "search budget (sensitization attempts)")
		quickChar   = flag.Bool("quick-char", false, "characterize on the reduced grid (faster startup)")
		list        = flag.Bool("list", false, "list built-in circuits and exit")
		structural  = flag.Bool("structural", false, "skip delay models (order paths by length)")
	)
	flag.Parse()
	if *list {
		for _, n := range circuits.Names() {
			fmt.Println(n)
		}
		return
	}
	if err := run(*circuitName, *benchFile, *verilogFile, *sdfFile, *testsFile, *dotFile, *coneOutputs, *detail, *robust, *techName, *libFile, *k, *complexOnly, *maxSteps, *quickChar, *structural); err != nil {
		fmt.Fprintln(os.Stderr, "tpsta:", err)
		os.Exit(1)
	}
}

func run(circuitName, benchFile, verilogFile, sdfFile, testsFile, dotFile, coneOutputs string, detail, robust bool, techName, libFile string, k int, complexOnly bool, maxSteps int64, quickChar, structural bool) error {
	tc, err := tech.ByName(techName)
	if err != nil {
		return err
	}
	var cir *netlist.Circuit
	if verilogFile != "" {
		f, err := os.Open(verilogFile)
		if err != nil {
			return err
		}
		defer f.Close()
		cir, err = netlist.ParseVerilog(verilogFile, f)
		if err != nil {
			return err
		}
	} else if benchFile != "" {
		f, err := os.Open(benchFile)
		if err != nil {
			return err
		}
		defer f.Close()
		cir, err = netlist.ParseExtendedBench(benchFile, f)
		if err != nil {
			return err
		}
	} else {
		cir, err = circuits.Get(circuitName)
		if err != nil {
			return err
		}
	}
	if coneOutputs != "" {
		var outs []string
		for _, o := range strings.Split(coneOutputs, ",") {
			outs = append(outs, strings.TrimSpace(o))
		}
		cone, err := netlist.ExtractCone(cir, cell.Default(), outs)
		if err != nil {
			return err
		}
		fmt.Printf("restricted to the cone of %v: %d of %d gates\n", outs, len(cone.Gates), len(cir.Gates))
		cir = cone
	}

	st, err := cir.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d inputs, %d outputs, %d gates (depth %d, %d complex)\n",
		st.Name, st.Inputs, st.Outputs, st.Gates, st.Depth, st.ComplexGates)

	var lib *charlib.Library
	if structural {
		lib = nil
	} else if libFile != "" {
		f, err := os.Open(libFile)
		if err != nil {
			return err
		}
		lib, err = charlib.Load(f)
		f.Close()
		if err != nil {
			return err
		}
		if lib.TechName != tc.Name {
			return fmt.Errorf("library is for %s, not %s", lib.TechName, tc.Name)
		}
		fmt.Printf("loaded %s\n", lib)
	} else {
		grid := charlib.NominalGrid()
		if quickChar {
			grid = charlib.TestGrid()
		}
		fmt.Printf("characterizing %s library...\n", tc.Name)
		t0 := time.Now()
		lib, err = charlib.Characterize(tc, cell.Default(), grid, charlib.Options{})
		if err != nil {
			return err
		}
		fmt.Printf("characterized %d arcs in %.1fs\n", len(lib.Poly), time.Since(t0).Seconds())
	}

	if sdfFile != "" {
		if lib == nil {
			return fmt.Errorf("-sdf needs a characterized library (omit -structural)")
		}
		f, err := os.Create(sdfFile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := sdf.Write(f, cir, tc, lib, sdf.Options{}); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", sdfFile)
		return nil
	}

	eng := core.New(cir, tc, lib, core.Options{ComplexOnly: complexOnly, MaxSteps: maxSteps, Robust: robust})
	t0 := time.Now()
	res, err := eng.KWorst(k)
	if err != nil {
		return err
	}
	fmt.Printf("search: %d steps in %.2fs (truncated=%v, justification aborts=%d)\n\n",
		res.Steps, time.Since(t0).Seconds(), res.Truncated, res.JustificationAborts)

	if testsFile != "" {
		f, err := os.Create(testsFile)
		if err != nil {
			return err
		}
		if err := core.WriteTestPairs(f, res.Paths); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d-path test set to %s\n", len(res.Paths), testsFile)
	}

	if dotFile != "" && len(res.Paths) > 0 {
		f, err := os.Create(dotFile)
		if err != nil {
			return err
		}
		if err := netlist.WriteDot(f, cir, res.Paths[0].Nodes); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (worst path highlighted)\n", dotFile)
	}

	tb := report.New(fmt.Sprintf("%d worst true paths", len(res.Paths)),
		"#", "delay(ps)", "edge", "path [cell.pin#case]", "input cube")
	for i, p := range res.Paths {
		edge := "rise"
		if p.FallDelay >= p.RiseDelay {
			edge = "fall"
		}
		tb.Row(i+1, report.Ps(p.WorstDelay()), edge, p.String(), cubeString(p))
	}
	if err := tb.Render(os.Stdout); err != nil {
		return err
	}
	if detail {
		for _, p := range res.Paths {
			rising := p.RiseOK
			if p.FallOK && p.FallDelay > p.RiseDelay {
				rising = false
			}
			if err := eng.WritePathReport(os.Stdout, p, rising); err != nil {
				return err
			}
			fmt.Println()
		}
	}
	return nil
}

func cubeString(p *core.TruePath) string {
	out := p.Start + "=T"
	for _, name := range sortedCubeKeys(p) {
		v := p.Cube[name]
		out += fmt.Sprintf(" %s=%s", name, v)
	}
	return out
}

func sortedCubeKeys(p *core.TruePath) []string {
	keys := make([]string, 0, len(p.Cube))
	for kname := range p.Cube {
		keys = append(keys, kname)
	}
	// Insertion sort keeps the helper dependency-free.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
