package main

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// TestRunEndToEnd drives the CLI entry point over the bundled testdata in
// both netlist formats, structure-only (no characterization) for speed.
func TestRunEndToEnd(t *testing.T) {
	for _, src := range []config{
		{benchFile: "../../testdata/mini.bench"},
		{verilogFile: "../../testdata/mini.v"},
	} {
		src.techName = "130nm"
		src.k = 5
		src.maxSteps = 10000
		src.quickChar = true
		src.structural = true
		if err := run(src, io.Discard); err != nil {
			t.Fatalf("run(%+v): %v", src, err)
		}
	}
	// Built-in circuit path with a cone restriction and detail report.
	if err := run(config{circuitName: "c17", coneOutputs: "22", detail: true,
		techName: "130nm", k: 3, maxSteps: 10000, quickChar: true, structural: true}, io.Discard); err != nil {
		t.Fatal(err)
	}
	// Unknown tech and unknown circuit fail cleanly.
	if err := run(config{circuitName: "c17", techName: "28nm", k: 3, maxSteps: 1000,
		quickChar: true, structural: true}, io.Discard); err == nil {
		t.Error("unknown tech should fail")
	}
	if err := run(config{circuitName: "c9999", techName: "130nm", k: 3, maxSteps: 1000,
		quickChar: true, structural: true}, io.Discard); err == nil {
		t.Error("unknown circuit should fail")
	}
}

// TestRunStatsAndTrace exercises the observability flags: the -stats
// report must be valid JSON with nonzero search counters, and the
// -trace file must hold one valid JSON event per line, closing with the
// root "run" span after the search's "done" event, with sampled step
// events in between (-trace-sample).
func TestRunStatsAndTrace(t *testing.T) {
	dir := t.TempDir()
	statsPath := filepath.Join(dir, "run.json")
	tracePath := filepath.Join(dir, "run.jsonl")
	if err := run(config{circuitName: "c17", techName: "130nm", k: 5, maxSteps: 10000,
		structural: true, statsFile: statsPath, traceFile: tracePath, traceSample: 7}, io.Discard); err != nil {
		t.Fatal(err)
	}

	buf, err := os.ReadFile(statsPath)
	if err != nil {
		t.Fatal(err)
	}
	var sr statsReport
	if err := json.Unmarshal(buf, &sr); err != nil {
		t.Fatalf("stats report is not valid JSON: %v", err)
	}
	if sr.Search.SensitizationAttempts == 0 {
		t.Error("stats report has zero sensitization attempts")
	}
	if sr.Result.Paths == 0 {
		t.Error("stats report has zero paths")
	}
	if _, ok := sr.PhaseSeconds["search"]; !ok {
		t.Error("stats report missing search phase timing")
	}

	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	type traceLine struct {
		Kind  string `json:"kind"`
		Name  string `json:"name"`
		Steps int64  `json:"steps"`
	}
	var last, done traceLine
	lines, stepEvents := 0, 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("trace line %d is not valid JSON: %v", lines+1, err)
		}
		lines++
		switch last.Kind {
		case "done":
			done = last
		case "step":
			stepEvents++
		}
	}
	if lines == 0 {
		t.Fatal("trace file is empty")
	}
	if last.Kind != "span" || last.Name != "run" {
		t.Errorf("last trace event = %q %q, want the root run span", last.Kind, last.Name)
	}
	if done.Kind != "done" {
		t.Error("trace has no done event")
	}
	if done.Steps != sr.Search.SensitizationAttempts {
		t.Errorf("trace done steps = %d, stats report = %d", done.Steps, sr.Search.SensitizationAttempts)
	}
	if stepEvents == 0 {
		t.Error("traceSample set but no step events recorded")
	}
}

// TestRunWithSDFAndTests exercises the artifact-writing paths with a
// quick characterization.
func TestRunWithSDFAndTests(t *testing.T) {
	if testing.Short() {
		t.Skip("characterizes a library")
	}
	dir := t.TempDir()
	sdfPath := filepath.Join(dir, "out.sdf")
	if err := run(config{benchFile: "../../testdata/mini.bench", sdfFile: sdfPath,
		techName: "130nm", k: 3, maxSteps: 10000, quickChar: true}, io.Discard); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(sdfPath); err != nil || st.Size() == 0 {
		t.Fatalf("sdf not written: %v", err)
	}
	testsPath := filepath.Join(dir, "tests.txt")
	if err := run(config{circuitName: "c17", testsFile: testsPath,
		techName: "130nm", k: 3, maxSteps: 10000, quickChar: true}, io.Discard); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(testsPath); err != nil || st.Size() == 0 {
		t.Fatalf("tests not written: %v", err)
	}
}
