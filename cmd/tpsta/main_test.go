package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRunEndToEnd drives the CLI entry point over the bundled testdata in
// both netlist formats, structure-only (no characterization) for speed.
func TestRunEndToEnd(t *testing.T) {
	for _, src := range []struct{ bench, verilog string }{
		{bench: "../../testdata/mini.bench"},
		{verilog: "../../testdata/mini.v"},
	} {
		if err := run("", src.bench, src.verilog, "", "", "", "", false, false, "130nm", "", 5, false, 10000, true, true); err != nil {
			t.Fatalf("run(%+v): %v", src, err)
		}
	}
	// Built-in circuit path.
	if err := run("c17", "", "", "", "", "", "22", true, false, "130nm", "", 3, false, 10000, true, true); err != nil {
		t.Fatal(err)
	}
	// Unknown tech and unknown circuit fail cleanly.
	if err := run("c17", "", "", "", "", "", "", false, false, "28nm", "", 3, false, 1000, true, true); err == nil {
		t.Error("unknown tech should fail")
	}
	if err := run("c9999", "", "", "", "", "", "", false, false, "130nm", "", 3, false, 1000, true, true); err == nil {
		t.Error("unknown circuit should fail")
	}
}

// TestRunWithSDFAndTests exercises the artifact-writing paths with a
// quick characterization.
func TestRunWithSDFAndTests(t *testing.T) {
	if testing.Short() {
		t.Skip("characterizes a library")
	}
	dir := t.TempDir()
	sdfPath := filepath.Join(dir, "out.sdf")
	if err := run("", "../../testdata/mini.bench", "", sdfPath, "", "", "", false, false, "130nm", "", 3, false, 10000, true, false); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(sdfPath); err != nil || st.Size() == 0 {
		t.Fatalf("sdf not written: %v", err)
	}
	testsPath := filepath.Join(dir, "tests.txt")
	if err := run("c17", "", "", "", testsPath, "", "", false, false, "130nm", "", 3, false, 10000, true, false); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(testsPath); err != nil || st.Size() == 0 {
		t.Fatalf("tests not written: %v", err)
	}
}
