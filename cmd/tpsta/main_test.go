package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunEndToEnd drives the CLI entry point over the bundled testdata in
// both netlist formats, structure-only (no characterization) for speed.
func TestRunEndToEnd(t *testing.T) {
	for _, src := range []config{
		{benchFile: "../../testdata/mini.bench"},
		{verilogFile: "../../testdata/mini.v"},
	} {
		src.techName = "130nm"
		src.k = 5
		src.maxSteps = 10000
		src.quickChar = true
		src.structural = true
		if err := run(src, io.Discard); err != nil {
			t.Fatalf("run(%+v): %v", src, err)
		}
	}
	// Built-in circuit path with a cone restriction and detail report.
	if err := run(config{circuitName: "c17", coneOutputs: "22", detail: true,
		techName: "130nm", k: 3, maxSteps: 10000, quickChar: true, structural: true}, io.Discard); err != nil {
		t.Fatal(err)
	}
	// Unknown tech and unknown circuit fail cleanly.
	if err := run(config{circuitName: "c17", techName: "28nm", k: 3, maxSteps: 1000,
		quickChar: true, structural: true}, io.Discard); err == nil {
		t.Error("unknown tech should fail")
	}
	if err := run(config{circuitName: "c9999", techName: "130nm", k: 3, maxSteps: 1000,
		quickChar: true, structural: true}, io.Discard); err == nil {
		t.Error("unknown circuit should fail")
	}
}

// TestRunStatsAndTrace exercises the observability flags: the -stats
// report must be valid JSON with nonzero search counters, and the
// -trace file must hold one valid JSON event per line, closing with the
// root "run" span after the search's "done" event, with sampled step
// events in between (-trace-sample).
func TestRunStatsAndTrace(t *testing.T) {
	dir := t.TempDir()
	statsPath := filepath.Join(dir, "run.json")
	tracePath := filepath.Join(dir, "run.jsonl")
	if err := run(config{circuitName: "c17", techName: "130nm", k: 5, maxSteps: 10000,
		structural: true, statsFile: statsPath, traceFile: tracePath, traceSample: 7}, io.Discard); err != nil {
		t.Fatal(err)
	}

	buf, err := os.ReadFile(statsPath)
	if err != nil {
		t.Fatal(err)
	}
	var sr statsReport
	if err := json.Unmarshal(buf, &sr); err != nil {
		t.Fatalf("stats report is not valid JSON: %v", err)
	}
	if sr.Search.SensitizationAttempts == 0 {
		t.Error("stats report has zero sensitization attempts")
	}
	if sr.Result.Paths == 0 {
		t.Error("stats report has zero paths")
	}
	if _, ok := sr.PhaseSeconds["search"]; !ok {
		t.Error("stats report missing search phase timing")
	}

	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	type traceLine struct {
		Kind  string `json:"kind"`
		Name  string `json:"name"`
		Steps int64  `json:"steps"`
	}
	var last, done traceLine
	lines, stepEvents := 0, 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("trace line %d is not valid JSON: %v", lines+1, err)
		}
		lines++
		switch last.Kind {
		case "done":
			done = last
		case "step":
			stepEvents++
		}
	}
	if lines == 0 {
		t.Fatal("trace file is empty")
	}
	if last.Kind != "span" || last.Name != "run" {
		t.Errorf("last trace event = %q %q, want the root run span", last.Kind, last.Name)
	}
	if done.Kind != "done" {
		t.Error("trace has no done event")
	}
	if done.Steps != sr.Search.SensitizationAttempts {
		t.Errorf("trace done steps = %d, stats report = %d", done.Steps, sr.Search.SensitizationAttempts)
	}
	if stepEvents == 0 {
		t.Error("traceSample set but no step events recorded")
	}
}

// TestRunWithSDFAndTests exercises the artifact-writing paths with a
// quick characterization.
func TestRunWithSDFAndTests(t *testing.T) {
	if testing.Short() {
		t.Skip("characterizes a library")
	}
	dir := t.TempDir()
	sdfPath := filepath.Join(dir, "out.sdf")
	if err := run(config{benchFile: "../../testdata/mini.bench", sdfFile: sdfPath,
		techName: "130nm", k: 3, maxSteps: 10000, quickChar: true}, io.Discard); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(sdfPath); err != nil || st.Size() == 0 {
		t.Fatalf("sdf not written: %v", err)
	}
	testsPath := filepath.Join(dir, "tests.txt")
	if err := run(config{circuitName: "c17", testsFile: testsPath,
		techName: "130nm", k: 3, maxSteps: 10000, quickChar: true}, io.Discard); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(testsPath); err != nil || st.Size() == 0 {
		t.Fatalf("tests not written: %v", err)
	}
}

// TestRunCornerFlags pins the operating-point flag contract: malformed
// -corners specs and non-physical -temp/-vdd values fail with usage
// errors before any characterization work, and a well-formed sweep
// runs end to end.
func TestRunCornerFlags(t *testing.T) {
	base := config{circuitName: "c17", techName: "130nm", k: 5,
		maxSteps: 10000, quickChar: true, structural: true}
	bad := []struct {
		name string
		mut  func(*config)
	}{
		{"nan temp", func(c *config) { c.temp = math.NaN() }},
		{"inf temp", func(c *config) { c.temp = math.Inf(1) }},
		{"negative vdd", func(c *config) { c.vdd = -1 }},
		{"nan vdd", func(c *config) { c.vdd = math.NaN() }},
		{"unknown corner name", func(c *config) { c.corners = "slow,bogus" }},
		{"empty corner field", func(c *config) { c.corners = "slow,,fast" }},
		{"missing vdd in pair", func(c *config) { c.corners = "125" }},
		{"extra field in pair", func(c *config) { c.corners = "125:1.2:3" }},
		{"unparsable temp in pair", func(c *config) { c.corners = "hot:1.2" }},
		{"zero vdd in pair", func(c *config) { c.corners = "125:0" }},
		{"negative vdd in pair", func(c *config) { c.corners = "125:-1.2" }},
		{"duplicate points", func(c *config) { c.corners = "slow,125:1.08" }},
	}
	for _, tcase := range bad {
		cfg := base
		tcase.mut(&cfg)
		if err := run(cfg, io.Discard); err == nil {
			t.Errorf("%s: run accepted %+v", tcase.name, cfg)
		}
	}

	var buf bytes.Buffer
	cfg := base
	cfg.corners = "slow, TYPICAL ,-40:1.32"
	cfg.statsFile = filepath.Join(t.TempDir(), "corners.json")
	if err := run(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"corner summary (3 corners", "slow", "typical", "T-40_V1.32", "cross-corner paths"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("corner report missing %q:\n%s", want, buf.String())
		}
	}

	// The -stats report of a sweep must carry the per-corner table and
	// the sweep-wide result summary.
	raw, err := os.ReadFile(cfg.statsFile)
	if err != nil {
		t.Fatal(err)
	}
	var sr statsReport
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatalf("stats JSON: %v", err)
	}
	if len(sr.Corners) != 3 {
		t.Fatalf("stats corners = %d, want 3", len(sr.Corners))
	}
	for i, want := range []string{"slow", "typical", "T-40_V1.32"} {
		if sr.Corners[i].Name != want {
			t.Errorf("stats corner %d = %q, want %q", i, sr.Corners[i].Name, want)
		}
	}
	if sr.Result.Paths == 0 || sr.Result.WorstDelayPs <= 0 {
		t.Errorf("sweep result summary not populated: %+v", sr.Result)
	}
}
