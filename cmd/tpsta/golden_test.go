package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

var update = flag.Bool("update", false, "regenerate golden files")

// searchLine matches the wall-clock search summary. It is elided from
// the golden comparison: the elapsed time varies run to run, and the
// K-worst branch-and-bound counters legitimately differ between pool
// sizes (see the differential harness in internal/core).
var searchLine = regexp.MustCompile(`(?m)^search: .*\n`)

func normalizeReport(out []byte) []byte {
	return searchLine.ReplaceAll(out, []byte("search: [elided]\n"))
}

// TestReportGolden pins the c17 report byte-for-byte (structure-only
// mode, so no characterization noise) and checks that a parallel run
// renders the identical report. Regenerate with: go test ./cmd/tpsta
// -run TestReportGolden -update
func TestReportGolden(t *testing.T) {
	goldenPath := filepath.Join("testdata", "c17_report.golden")
	render := func(workers int) []byte {
		var buf bytes.Buffer
		cfg := config{circuitName: "c17", techName: "130nm", k: 10,
			maxSteps: 10000, structural: true, workers: workers}
		if err := run(cfg, &buf); err != nil {
			t.Fatalf("run(workers=%d): %v", workers, err)
		}
		return normalizeReport(buf.Bytes())
	}
	serial := render(1)
	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, serial, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(serial, want) {
		t.Errorf("serial report differs from golden (regenerate with -update if intended):\n--- got ---\n%s\n--- want ---\n%s", serial, want)
	}
	if par := render(4); !bytes.Equal(par, serial) {
		t.Errorf("workers=4 report differs from serial:\n--- parallel ---\n%s\n--- serial ---\n%s", par, serial)
	}
}
