// Command benchjson converts `go test -bench` output on stdin into the
// repository's recorded benchmark artifact format (see
// BENCH_parallel_search.json, BENCH_delay_kernels.json): a small JSON
// document with the host description, the per-benchmark ns/op, B/op and
// allocs/op figures, and a free-form note.
//
// Usage:
//
//	go test -run '^$' -bench X -benchtime 100x ./pkg | \
//	    go run ./cmd/benchjson -artifact "thing measured" -out BENCH_thing.json
//
// When the input contains the BenchmarkArcDelays kernel/mapkeyed pair,
// the before/after comparison is appended to the note automatically so
// the recorded artifact always carries the measured speedup.
//
// With -compare BASELINE.json the fresh results are also checked
// against a previously recorded artifact: any benchmark present in
// both that got slower in ns/op by more than -tolerance (default 15%),
// or that gained allocations over a zero-alloc baseline, fails the run
// with exit 1 (`make bench-compare`; CI runs it as a non-blocking
// job because shared runners are noisy). With -compare and no -out the
// fresh artifact JSON is not printed — the comparison is the output.
//
// With -min-ratio "BEFORE,AFTER,MIN" the fresh results must uphold a
// recorded speedup claim: Bench[BEFORE] must take at least MIN times
// the ns/op of Bench[AFTER] (e.g. the multi-corner sweep's >= 1.5x
// over independent per-corner runs), or the run fails with exit 1.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

type host struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	CPU        string `json:"cpu,omitempty"`
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

type report struct {
	Artifact string             `json:"artifact"`
	Date     string             `json:"date"`
	Command  string             `json:"command,omitempty"`
	Host     host               `json:"host"`
	Note     string             `json:"note,omitempty"`
	Workload map[string]string  `json:"workload,omitempty"`
	Bench    map[string]metrics `json:"bench"`
}

type metrics struct {
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  float64 `json:"bytesPerOp"`
	AllocsPerOp float64 `json:"allocsPerOp"`
	// Extra holds custom b.ReportMetric columns (e.g. "steps/op" from
	// BenchmarkNogoodLearning). -compare ignores them: they are recorded
	// facts, not regression-gated figures.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// benchLine matches one result row, e.g.
// "BenchmarkArcDelays/kernel-4   634924   453.0 ns/op   0 B/op   0 allocs/op"
// (the -4 GOMAXPROCS suffix and the memory columns are optional).
var benchLine = regexp.MustCompile(
	`^Benchmark(\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

// metricPair matches every "value unit" column of a result row,
// including custom b.ReportMetric units like "steps/op".
var metricPair = regexp.MustCompile(`([\d.]+(?:[eE][+-]?\d+)?) (\S+/op)`)

type workloadFlag map[string]string

func (w workloadFlag) String() string { return "" }
func (w workloadFlag) Set(kv string) error {
	k, v, ok := strings.Cut(kv, "=")
	if !ok {
		return fmt.Errorf("workload %q is not key=value", kv)
	}
	w[k] = v
	return nil
}

func main() {
	r := report{
		Date:     time.Now().Format("2006-01-02"),
		Workload: workloadFlag{},
		Bench:    map[string]metrics{},
		Host: host{
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			CPUs:       runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
	}
	out := flag.String("out", "", "output file (default stdout; suppressed when -compare is set)")
	compare := flag.String("compare", "", "baseline artifact JSON to compare against (exit 1 on regression)")
	tol := flag.Float64("tolerance", 0.15, "fractional ns/op slowdown tolerated by -compare")
	minRatio := flag.String("min-ratio", "", "BEFORE,AFTER,MIN: require Bench[BEFORE] >= MIN x Bench[AFTER] in ns/op (exit 1 otherwise)")
	flag.StringVar(&r.Artifact, "artifact", "", "what the benchmarks measure")
	flag.StringVar(&r.Command, "command", "", "the benchmark command, for reproduction")
	flag.StringVar(&r.Note, "note", "", "free-form interpretation note")
	flag.Var(workloadFlag(r.Workload), "workload", "workload descriptor key=value (repeatable)")
	flag.Parse()

	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // keep the raw output visible on the terminal
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			r.Host.CPU = strings.TrimSpace(cpu)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		var mt metrics
		mt.NsPerOp, _ = strconv.ParseFloat(m[2], 64)
		if m[3] != "" {
			mt.BytesPerOp, _ = strconv.ParseFloat(m[3], 64)
		}
		if m[4] != "" {
			mt.AllocsPerOp, _ = strconv.ParseFloat(m[4], 64)
		}
		for _, pair := range metricPair.FindAllStringSubmatch(line, -1) {
			unit := pair[2]
			if unit == "ns/op" || unit == "B/op" || unit == "allocs/op" {
				continue
			}
			v, err := strconv.ParseFloat(pair[1], 64)
			if err != nil {
				continue
			}
			if mt.Extra == nil {
				mt.Extra = map[string]float64{}
			}
			mt.Extra[unit] = v
		}
		r.Bench[m[1]] = mt
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(r.Bench) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}
	if after, okA := r.Bench["ArcDelays/kernel"]; okA {
		if before, okB := r.Bench["ArcDelays/mapkeyed"]; okB && after.NsPerOp > 0 {
			r.Note = strings.TrimSpace(r.Note + fmt.Sprintf(
				" Measured this run: mapkeyed (before) %.0f ns/op, %.0f allocs/op vs kernel (after) %.0f ns/op, %.0f allocs/op — %.2fx fewer ns/op.",
				before.NsPerOp, before.AllocsPerOp, after.NsPerOp, after.AllocsPerOp,
				before.NsPerOp/after.NsPerOp))
		}
	}
	if after, okA := r.Bench["ArcDelays/batched"]; okA {
		if before, okB := r.Bench["ArcDelays/kernel"]; okB && after.NsPerOp > 0 {
			r.Note = strings.TrimSpace(r.Note + fmt.Sprintf(
				" Measured this run: kernel (scalar walk) %.0f ns/op, %.0f allocs/op vs batched (struct-of-arrays) %.0f ns/op, %.0f allocs/op — %.2fx fewer ns/op.",
				before.NsPerOp, before.AllocsPerOp, after.NsPerOp, after.AllocsPerOp,
				before.NsPerOp/after.NsPerOp))
		}
	}
	if sweep, okS := r.Bench["MultiCorner/sweep"]; okS {
		if ind, okI := r.Bench["MultiCorner/independent"]; okI && sweep.NsPerOp > 0 {
			r.Note = strings.TrimSpace(r.Note + fmt.Sprintf(
				" Measured this run: independent (N full builds) %.0f ns/op vs sweep (one build + N-1 respecializations) %.0f ns/op — %.2fx fewer ns/op.",
				ind.NsPerOp, sweep.NsPerOp, ind.NsPerOp/sweep.NsPerOp))
		}
	}
	// The NogoodLearning artifact's headline is the step-count
	// reduction, computed from the custom steps/op columns so the
	// recorded note always carries the measured figure.
	for _, sub := range []string{"mult", "skew"} {
		off, okO := r.Bench["NogoodLearning/"+sub+"/off"]
		on, okL := r.Bench["NogoodLearning/"+sub+"/learn"]
		if !okO || !okL {
			continue
		}
		so, sl := off.Extra["steps/op"], on.Extra["steps/op"]
		if so <= 0 || sl <= 0 {
			continue
		}
		r.Note = strings.TrimSpace(r.Note + fmt.Sprintf(
			" Measured this run (%s): %.0f steps/op unlearned vs %.0f learned — %.1f%% fewer sensitization attempts.",
			sub, so, sl, 100*(1-sl/so)))
	}
	buf, err := json.MarshalIndent(&r, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	switch {
	case *out != "":
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote %s\n", *out)
	case *compare == "":
		os.Stdout.Write(buf)
	}
	if *compare != "" {
		regressions, err := compareBaseline(os.Stderr, r.Bench, *compare, *tol)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if regressions > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed beyond %.0f%% against %s\n",
				regressions, *tol*100, *compare)
			os.Exit(1)
		}
	}
	if *minRatio != "" {
		if err := checkMinRatio(os.Stderr, r.Bench, *minRatio); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}
}

// checkMinRatio enforces a recorded speedup claim on the fresh
// results: spec is "BEFORE,AFTER,MIN" and the run fails unless
// Bench[BEFORE].ns/op >= MIN × Bench[AFTER].ns/op.
func checkMinRatio(w io.Writer, bench map[string]metrics, spec string) error {
	parts := strings.Split(spec, ",")
	if len(parts) != 3 {
		return fmt.Errorf("-min-ratio %q: want BEFORE,AFTER,MIN", spec)
	}
	before, after := strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])
	min, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
	if err != nil || min <= 0 {
		return fmt.Errorf("-min-ratio %q: bad minimum ratio %q", spec, parts[2])
	}
	b, okB := bench[before]
	a, okA := bench[after]
	if !okB || !okA {
		return fmt.Errorf("-min-ratio %q: results lack %q and/or %q", spec, before, after)
	}
	if a.NsPerOp <= 0 {
		return fmt.Errorf("-min-ratio %q: %q recorded no ns/op", spec, after)
	}
	ratio := b.NsPerOp / a.NsPerOp
	verdict := "ok"
	if ratio < min {
		verdict = "BELOW MINIMUM"
	}
	fmt.Fprintf(w, "benchjson: %s/%s = %.2fx (minimum %.2fx)  %s\n", before, after, ratio, min, verdict)
	if ratio < min {
		return fmt.Errorf("speedup %.2fx is below the gated minimum %.2fx (%s vs %s)", ratio, min, before, after)
	}
	return nil
}

// compareBaseline checks fresh results against a recorded artifact and
// prints one verdict line per shared benchmark. A regression is a
// ns/op slowdown beyond tol, or any allocations where the baseline
// recorded none (the repository's zero-alloc contracts).
func compareBaseline(w io.Writer, fresh map[string]metrics, path string, tol float64) (regressions int, err error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var base report
	if err := json.Unmarshal(buf, &base); err != nil {
		return 0, fmt.Errorf("baseline %s: %w", path, err)
	}
	names := make([]string, 0, len(fresh))
	for name := range fresh {
		if _, ok := base.Bench[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return 0, fmt.Errorf("baseline %s shares no benchmarks with the fresh results", path)
	}
	for _, name := range names {
		b, f := base.Bench[name], fresh[name]
		verdict := "ok"
		var delta float64
		if b.NsPerOp > 0 {
			delta = f.NsPerOp/b.NsPerOp - 1
		}
		if delta > tol {
			verdict = "REGRESSION"
			regressions++
		}
		// stalint:ignore floatcmp recorded artifact values are exact JSON literals
		if b.AllocsPerOp == 0 && f.AllocsPerOp > 0 {
			verdict = "REGRESSION (allocs: 0 -> " + strconv.FormatFloat(f.AllocsPerOp, 'f', -1, 64) + ")"
			regressions++
		}
		fmt.Fprintf(w, "benchjson: %-40s %12.0f -> %9.0f ns/op  %+6.1f%%  %s\n",
			name, b.NsPerOp, f.NsPerOp, delta*100, verdict)
	}
	return regressions, nil
}
