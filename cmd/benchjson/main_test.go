package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeBaseline records a minimal artifact file for compareBaseline.
func writeBaseline(t *testing.T, bench map[string]metrics) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "base.json")
	r := report{Artifact: "test", Bench: bench}
	buf, err := json.Marshal(&r)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareBaseline(t *testing.T) {
	base := writeBaseline(t, map[string]metrics{
		"Search/off":     {NsPerOp: 1000},
		"Search/metrics": {NsPerOp: 1000, AllocsPerOp: 0},
		"OnlyInBaseline": {NsPerOp: 5},
	})

	// Within tolerance (+10% on a 15% budget) and an improvement: pass.
	var out bytes.Buffer
	n, err := compareBaseline(&out, map[string]metrics{
		"Search/off":     {NsPerOp: 1100},
		"Search/metrics": {NsPerOp: 900},
		"OnlyFresh":      {NsPerOp: 1},
	}, base, 0.15)
	if err != nil || n != 0 {
		t.Fatalf("within-tolerance compare: %d regressions, err %v\n%s", n, err, out.String())
	}
	if !strings.Contains(out.String(), "Search/off") || strings.Contains(out.String(), "OnlyFresh") {
		t.Errorf("verdict lines wrong:\n%s", out.String())
	}

	// A 30% slowdown regresses.
	out.Reset()
	n, err = compareBaseline(&out, map[string]metrics{"Search/off": {NsPerOp: 1300}}, base, 0.15)
	if err != nil || n != 1 {
		t.Fatalf("slowdown compare: %d regressions, err %v\n%s", n, err, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("no REGRESSION verdict:\n%s", out.String())
	}

	// New allocations over a zero-alloc baseline regress even when fast.
	out.Reset()
	n, err = compareBaseline(&out, map[string]metrics{"Search/metrics": {NsPerOp: 500, AllocsPerOp: 2}}, base, 0.15)
	if err != nil || n != 1 {
		t.Fatalf("alloc compare: %d regressions, err %v\n%s", n, err, out.String())
	}
	if !strings.Contains(out.String(), "allocs: 0 -> 2") {
		t.Errorf("alloc verdict missing:\n%s", out.String())
	}

	// Disjoint benchmark sets are an error, not a silent pass.
	if _, err := compareBaseline(&out, map[string]metrics{"Other": {NsPerOp: 1}}, base, 0.15); err == nil {
		t.Error("disjoint compare passed silently")
	}
	if _, err := compareBaseline(&out, nil, filepath.Join(t.TempDir(), "missing.json"), 0.15); err == nil {
		t.Error("missing baseline passed silently")
	}
}

func TestCheckMinRatio(t *testing.T) {
	bench := map[string]metrics{
		"MultiCorner/independent": {NsPerOp: 3000},
		"MultiCorner/sweep":       {NsPerOp: 1500},
	}
	var out bytes.Buffer
	if err := checkMinRatio(&out, bench, "MultiCorner/independent,MultiCorner/sweep,1.5"); err != nil {
		t.Errorf("2.0x against a 1.5x minimum should pass: %v", err)
	}
	if !strings.Contains(out.String(), "2.00x") {
		t.Errorf("verdict line missing the measured ratio: %q", out.String())
	}
	if err := checkMinRatio(&out, bench, "MultiCorner/independent,MultiCorner/sweep,2.5"); err == nil {
		t.Error("2.0x against a 2.5x minimum should fail")
	}
	for _, spec := range []string{
		"",
		"a,b",
		"a,b,c,d",
		"MultiCorner/independent,MultiCorner/sweep,zero",
		"MultiCorner/independent,MultiCorner/sweep,-1",
		"missing,MultiCorner/sweep,1.5",
		"MultiCorner/independent,missing,1.5",
	} {
		if err := checkMinRatio(&out, bench, spec); err == nil {
			t.Errorf("spec %q should be rejected", spec)
		}
	}
}
