// Command charlib characterizes the standard-cell library against the
// switch-level electrical simulator and writes the result as JSON: the
// paper's "one-time library parameter extraction process". The output
// contains both the polynomial models (per sensitization vector) and the
// baseline NLDM-style LUT tables (default vector only).
//
// Usage:
//
//	charlib -tech 130nm -out lib130.json
//	charlib -tech 65nm -grid full -target 0.01 -out lib65.json
package main

import (
	"flag"
	"fmt"
	"os"

	"tpsta/internal/cell"
	"tpsta/internal/charlib"
	"tpsta/internal/liberty"
	"tpsta/internal/obs"
	"tpsta/internal/tech"
)

func main() {
	var (
		techName    = flag.String("tech", "130nm", "technology: 130nm, 90nm or 65nm")
		outFile     = flag.String("out", "", "output JSON file (default: lib<tech>.json)")
		gridName    = flag.String("grid", "nominal", "sweep grid: nominal, full or test")
		target      = flag.Float64("target", 0.02, "polynomial fit error target")
		maxOrder    = flag.Int("max-order", 4, "polynomial per-variable order cap")
		workers     = flag.Int("workers", 0, "sweep parallelism (0 = GOMAXPROCS)")
		libertyFile = flag.String("liberty", "", "additionally export the NLDM view as a Liberty .lib file")
	)
	flag.Parse()
	if err := run(*techName, *outFile, *gridName, *target, *maxOrder, *workers, *libertyFile); err != nil {
		fmt.Fprintln(os.Stderr, "charlib:", err)
		os.Exit(1)
	}
}

func run(techName, outFile, gridName string, target float64, maxOrder, workers int, libertyFile string) error {
	tc, err := tech.ByName(techName)
	if err != nil {
		return err
	}
	var grid charlib.Grid
	switch gridName {
	case "nominal":
		grid = charlib.NominalGrid()
	case "full":
		grid = charlib.FullGrid()
	case "test":
		grid = charlib.TestGrid()
	default:
		return fmt.Errorf("unknown grid %q", gridName)
	}
	if outFile == "" {
		outFile = "lib" + techName + ".json"
	}
	fmt.Printf("characterizing %s on the %s grid (%d×%d×%d×%d points per arc)...\n",
		techName, gridName, len(grid.Fo), len(grid.Tin), len(grid.Temp), len(grid.VDDRel))
	phases := &obs.Phases{}
	stopChar := phases.Start("characterize")
	lib, err := charlib.Characterize(tc, cell.Default(), grid, charlib.Options{
		Target:   target,
		MaxOrder: maxOrder,
		Workers:  workers,
	})
	if err != nil {
		return err
	}
	d := stopChar()
	key, worst := lib.WorstFitErr()
	fmt.Printf("%s in %.1fs; worst delay fit %.2f%% at %s\n",
		lib, d.Seconds(), worst*100, key)
	fmt.Printf("sweep: %d workers at %.0f%% utilization, %.1fs sim + %.1fs fit (%d solves), slowest arc %s (%.2fs)\n",
		lib.Stats.Workers, lib.Stats.Utilization*100, lib.Stats.SimSeconds, lib.Stats.FitSeconds,
		lib.Stats.FitSolves, lib.Stats.SlowestArc, lib.Stats.SlowestArcSeconds)

	f, err := os.Create(outFile)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := lib.Save(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outFile)

	if libertyFile != "" {
		lf, err := os.Create(libertyFile)
		if err != nil {
			return err
		}
		defer lf.Close()
		if err := liberty.Write(lf, lib, cell.Default()); err != nil {
			return err
		}
		fmt.Printf("wrote %s (NLDM view; per-vector polynomial models are JSON-only)\n", libertyFile)
	}
	return nil
}
