package main

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"tpsta/internal/analysis/stalint"
)

// The ratchet baseline is a sorted text file of accepted lint state:
//
//	finding <analyzer> <relfile> <message...>
//	ignore <relfile> <names> <justification...>
//
// Lines are compared verbatim (line numbers are deliberately absent,
// so moving code never churns the file). A run fails when it produces
// a line the baseline does not contain — a new finding or a new
// suppression; entries the run no longer produces are reported as
// stale so the baseline can be re-tightened, but do not fail the run.

const baselineHeader = `# stalint ratchet baseline — accepted findings and suppression inventory.
# Regenerate with: make lint-baseline (stalint -write-baseline -baseline lint.baseline ./...)
# New lines fail CI; stale lines are reported so the file can be re-tightened.`

// baselineLines renders the current lint state as sorted baseline lines.
func baselineLines(fs []finding, igs []stalint.Ignore) []string {
	set := map[string]bool{}
	for _, f := range fs {
		set[f.key()] = true
	}
	for _, ig := range igs {
		set["ignore "+ig.File+" "+ig.Names+" "+ig.Why] = true
	}
	lines := make([]string, 0, len(set))
	for l := range set {
		lines = append(lines, l)
	}
	sort.Strings(lines)
	return lines
}

// writeBaseline persists the current state to path.
func writeBaseline(path string, lines []string) error {
	var b strings.Builder
	b.WriteString(baselineHeader)
	b.WriteString("\n")
	for _, l := range lines {
		b.WriteString(l)
		b.WriteString("\n")
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// readBaseline loads the accepted-line set from path.
func readBaseline(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	set := map[string]bool{}
	for _, l := range strings.Split(string(data), "\n") {
		l = strings.TrimSpace(l)
		if l == "" || strings.HasPrefix(l, "#") {
			continue
		}
		set[l] = true
	}
	return set, nil
}

// ratchet compares the current lines against the baseline. New lines
// (not accepted) are returned for failing the run; stale baseline
// entries are reported to stderr as informational.
func ratchet(current []string, accepted map[string]bool) (fresh []string) {
	seen := map[string]bool{}
	for _, l := range current {
		seen[l] = true
		if !accepted[l] {
			fresh = append(fresh, l)
		}
	}
	var stale []string
	for l := range accepted {
		if !seen[l] {
			stale = append(stale, l)
		}
	}
	sort.Strings(stale)
	for _, l := range stale {
		fmt.Fprintf(os.Stderr, "stalint: stale baseline entry (fixed? tighten the baseline): %s\n", l)
	}
	return fresh
}
