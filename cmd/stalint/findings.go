package main

import (
	"encoding/json"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// finding is one diagnostic from the vet run, normalized to a
// module-root-relative path.
type finding struct {
	Analyzer string
	File     string // root-relative, forward slashes
	Line     int
	Col      int
	Message  string
}

// key is the ratchet identity of a finding. It deliberately omits the
// line number: moving code around must not churn the baseline, only
// introducing a genuinely new finding (new analyzer, file or message)
// should.
func (f finding) key() string {
	return "finding " + f.Analyzer + " " + f.File + " " + f.Message
}

// parseVetJSON extracts diagnostics from `go vet -json` output. The
// stream interleaves `# package` comment lines with one JSON object per
// package, shaped {"pkg": {"analyzer": [{"posn": ..., "message": ...}]}};
// compile errors and other driver noise arrive as plain text. The
// parser is tolerant: it splits the stream at `#` lines, decodes every
// chunk that looks like JSON, and returns whatever text did not parse
// so the caller can surface operational failures.
func parseVetJSON(out []byte, root string) (fs []finding, leftover string) {
	var chunk strings.Builder
	var noise []string
	flush := func() {
		s := strings.TrimSpace(chunk.String())
		chunk.Reset()
		if s == "" {
			return
		}
		if !strings.HasPrefix(s, "{") {
			noise = append(noise, s)
			return
		}
		var pkgs map[string]map[string][]struct {
			Posn    string `json:"posn"`
			Message string `json:"message"`
		}
		if err := json.Unmarshal([]byte(s), &pkgs); err != nil {
			noise = append(noise, s)
			return
		}
		for _, byAnalyzer := range pkgs {
			for analyzer, diags := range byAnalyzer {
				for _, d := range diags {
					f := finding{Analyzer: analyzer, Message: d.Message}
					f.File, f.Line, f.Col = splitPosn(d.Posn, root)
					fs = append(fs, f)
				}
			}
		}
	}
	for _, line := range strings.Split(string(out), "\n") {
		if strings.HasPrefix(line, "#") {
			flush()
			continue
		}
		chunk.WriteString(line)
		chunk.WriteString("\n")
	}
	flush()
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return fs, strings.Join(noise, "\n")
}

// splitPosn decomposes "path:line:col" (col optional) and relativizes
// the path against the module root.
func splitPosn(posn, root string) (file string, line, col int) {
	file = posn
	if i := strings.LastIndexByte(file, ':'); i >= 0 {
		if n, err := strconv.Atoi(file[i+1:]); err == nil {
			col = n
			file = file[:i]
		}
	}
	if i := strings.LastIndexByte(file, ':'); i >= 0 {
		if n, err := strconv.Atoi(file[i+1:]); err == nil {
			line = n
			file = file[:i]
		}
	}
	if line == 0 && col != 0 {
		// Only one numeric suffix: it was the line, not the column.
		line, col = col, 0
	}
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = rel
	}
	return filepath.ToSlash(file), line, col
}
