package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildSelf compiles the stalint binary once per test run.
func buildSelf(t *testing.T) string {
	t.Helper()
	exe := filepath.Join(t.TempDir(), "stalint")
	cmd := exec.Command("go", "build", "-o", exe, ".")
	cmd.Env = append(os.Environ(), "GOWORK=off")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building stalint: %v\n%s", err, out)
	}
	return exe
}

// fixtureModule writes a tiny module with one floatcmp violation and
// returns its root.
func fixtureModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module smoke\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

const dirtySrc = `package p

// Delay compares delays exactly — the floatcmp analyzer flags this.
func Delay(a, b float64) bool { return a == b }
`

const cleanSrc = `package p

// Delay is fine.
func Delay(a, b float64) float64 { return a + b }
`

// run executes the binary in dir and returns exit code and combined
// output.
func run(t *testing.T, dir, exe string, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(exe, args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOWORK=off")
	out, err := cmd.CombinedOutput()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running %s: %v\n%s", exe, err, out)
		}
		code = ee.ExitCode()
	}
	return code, string(out)
}

func TestStandaloneFindsAndExits(t *testing.T) {
	exe := buildSelf(t)

	dirty := fixtureModule(t, dirtySrc)
	code, out := run(t, dirty, exe, "./...")
	if code != 1 {
		t.Fatalf("dirty module: exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "floatcmp") || !strings.Contains(out, "p.go") {
		t.Errorf("finding output missing analyzer or file:\n%s", out)
	}

	clean := fixtureModule(t, cleanSrc)
	code, out = run(t, clean, exe, "./...")
	if code != 0 {
		t.Fatalf("clean module: exit %d, want 0\n%s", code, out)
	}
}

func TestVettoolMode(t *testing.T) {
	exe := buildSelf(t)
	dirty := fixtureModule(t, dirtySrc)
	cmd := exec.Command("go", "vet", "-vettool="+exe, "./...")
	cmd.Dir = dirty
	cmd.Env = append(os.Environ(), "GOWORK=off")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool on dirty module succeeded; want failure\n%s", out)
	}
	if !strings.Contains(string(out), "==") && !strings.Contains(string(out), "float") {
		t.Errorf("vet output missing the floatcmp diagnostic:\n%s", out)
	}
}

func TestBareIgnoreRejected(t *testing.T) {
	exe := buildSelf(t)
	dir := fixtureModule(t, `package p

// stalint:ignore
func F() {}
`)
	code, out := run(t, dir, exe, "./...")
	if code != 1 {
		t.Fatalf("bare ignore: exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "bare stalint:ignore") {
		t.Errorf("missing bare-ignore rejection:\n%s", out)
	}
	// Directive violations cannot be baselined away.
	code, out = run(t, dir, exe, "-write-baseline", "./...")
	if code != 1 {
		t.Errorf("-write-baseline with a malformed directive: exit %d, want 1\n%s", code, out)
	}
}

func TestBaselineRatchet(t *testing.T) {
	exe := buildSelf(t)
	dir := fixtureModule(t, dirtySrc)

	// Fresh findings without a baseline fail…
	if code, out := run(t, dir, exe, "./..."); code != 1 {
		t.Fatalf("pre-baseline: exit %d, want 1\n%s", code, out)
	}
	// …writing a baseline accepts them…
	if code, out := run(t, dir, exe, "-write-baseline", "-baseline", "lint.baseline", "./..."); code != 0 {
		t.Fatalf("-write-baseline: exit %d, want 0\n%s", code, out)
	}
	data, err := os.ReadFile(filepath.Join(dir, "lint.baseline"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "finding floatcmp p.go") {
		t.Errorf("baseline missing the finding line:\n%s", data)
	}
	// …and the ratchet then passes.
	if code, out := run(t, dir, exe, "-baseline", "lint.baseline", "./..."); code != 0 {
		t.Fatalf("ratchet on accepted state: exit %d, want 0\n%s", code, out)
	}
	// A new finding beyond the baseline fails again.
	extra := dirtySrc + "\n// Slew compares exactly too.\nfunc Slew(a, b float64) bool { return a != b }\n"
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(extra), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out := run(t, dir, exe, "-baseline", "lint.baseline", "./...")
	if code != 1 {
		t.Fatalf("new finding past baseline: exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "new (not in lint.baseline)") {
		t.Errorf("missing new-finding report:\n%s", out)
	}
}

func TestSARIFOutput(t *testing.T) {
	exe := buildSelf(t)
	dir := fixtureModule(t, dirtySrc)
	code, out := run(t, dir, exe, "-sarif", "out.sarif", "./...")
	if code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, out)
	}
	data, err := os.ReadFile(filepath.Join(dir, "out.sarif"))
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{`"version": "2.1.0"`, `"ruleId": "floatcmp"`, `"uri": "p.go"`} {
		if !strings.Contains(string(data), frag) {
			t.Errorf("SARIF missing %s:\n%s", frag, data)
		}
	}
}
