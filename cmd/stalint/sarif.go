package main

import (
	"encoding/json"
	"os"

	"tpsta/internal/analysis/stalint"
)

// Minimal SARIF 2.1.0 output: one run, one rule per analyzer, one
// result per finding. Enough for code-scanning UIs and CI artifact
// viewers without dragging in a SARIF dependency.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID        string          `json:"id"`
	ShortDesc sarifMultilnMsg `json:"shortDescription"`
}

type sarifMultilnMsg struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMultilnMsg `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// writeSARIF renders the findings to path.
func writeSARIF(path string, fs []finding) error {
	var rules []sarifRule
	for _, a := range stalint.Analyzers() {
		rules = append(rules, sarifRule{ID: a.Name, ShortDesc: sarifMultilnMsg{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(fs))
	for _, f := range fs {
		line := f.Line
		if line <= 0 {
			line = 1 // SARIF requires a positive startLine
		}
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMultilnMsg{Text: f.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: f.File},
				Region:           sarifRegion{StartLine: line, StartColumn: f.Col},
			}}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "stalint", Rules: rules}},
			Results: results,
		}},
	}
	data, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
