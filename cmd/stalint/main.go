// Command stalint runs the repository's custom static-analysis suite
// (internal/analysis): sharedstate, exhaustive, floatcmp, obscheck,
// errwrap, and the interprocedural contract analyzers noalloc and
// determinism.
//
// It speaks the go vet -vettool protocol (unitchecker), so the same
// binary works two ways:
//
//	go vet -vettool=$(which stalint) ./...   # explicit vet integration
//	stalint ./...                            # standalone: re-execs go vet
//
// In standalone mode stalint locates its own executable and re-invokes
// `go vet -json -vettool=<self> <patterns>`, which gives the full
// driver — package loading, facts, caching — without depending on
// golang.org/x/tools/go/packages. On top of the analyzer findings the
// standalone driver:
//
//   - sweeps every stalint directive in the module and rejects
//     malformed ones (a bare `stalint:ignore`, a suppression without a
//     justification, an unknown directive) — these fail the run
//     unconditionally and can never be baselined away;
//   - ratchets findings and suppressions against a committed baseline
//     (-baseline lint.baseline): new lines fail, stale lines are
//     reported for re-tightening; -write-baseline regenerates it;
//   - renders SARIF 2.1.0 (-sarif out.sarif) for CI artifact upload.
//
// Exit codes: 0 clean (or ratchet satisfied), 1 findings / new ratchet
// lines / directive violations, 2 operational failure.
//
// Analyzer flags pass through in both modes, e.g.
// `stalint -exhaustive.enums=logic.Trit ./...`.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"tpsta/internal/analysis/stalint"
)

func main() {
	args := os.Args[1:]
	if vetProtocol(args) {
		unitchecker.Main(stalint.Analyzers()...) // does not return
	}
	os.Exit(standalone(args))
}

// vetProtocol reports whether the process was invoked by go vet: the
// driver probes with -V=full and -flags, then passes a *.cfg per
// package.
func vetProtocol(args []string) bool {
	for _, a := range args {
		if strings.HasSuffix(a, ".cfg") || strings.HasPrefix(a, "-V=") || a == "-flags" {
			return true
		}
	}
	return false
}

// driverFlags are the standalone-only options, consumed before the
// remaining flags are forwarded to go vet.
type driverFlags struct {
	baseline      string // ratchet file to compare against
	writeBaseline bool   // regenerate the ratchet file instead of comparing
	sarif         string // SARIF 2.1.0 output path
}

// splitArgs separates driver flags, pass-through vet/analyzer flags and
// package patterns.
func splitArgs(args []string) (df driverFlags, flags, pats []string, err error) {
	take := func(i int, name string) (string, int, error) {
		a := args[i]
		if eq := strings.IndexByte(a, '='); eq >= 0 {
			return a[eq+1:], i, nil
		}
		if i+1 >= len(args) {
			return "", i, fmt.Errorf("%s requires a value", name)
		}
		return args[i+1], i + 1, nil
	}
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-write-baseline" || a == "--write-baseline":
			df.writeBaseline = true
		case a == "-baseline" || a == "--baseline" || strings.HasPrefix(a, "-baseline=") || strings.HasPrefix(a, "--baseline="):
			df.baseline, i, err = take(i, "-baseline")
			if err != nil {
				return df, nil, nil, err
			}
		case a == "-sarif" || a == "--sarif" || strings.HasPrefix(a, "-sarif=") || strings.HasPrefix(a, "--sarif="):
			df.sarif, i, err = take(i, "-sarif")
			if err != nil {
				return df, nil, nil, err
			}
		case strings.HasPrefix(a, "-"):
			flags = append(flags, a)
		default:
			pats = append(pats, a)
		}
	}
	return df, flags, pats, nil
}

// moduleRoot walks up from dir to the enclosing go.mod.
func moduleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// standalone runs the suite through `go vet -json -vettool=<self>`,
// applies the directive sweep and the ratchet, and returns the exit
// code.
func standalone(args []string) int {
	df, flags, pats, err := splitArgs(args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stalint: %v\n", err)
		return 2
	}
	if len(pats) == 0 {
		pats = []string{"./..."}
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "stalint: cannot locate own executable: %v\n", err)
		return 2
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "stalint: %v\n", err)
		return 2
	}
	root, err := moduleRoot(cwd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stalint: %v\n", err)
		return 2
	}

	// Directive sweep first: malformed suppressions fail the run before
	// any analysis, and are never subject to the baseline.
	violations, ignores, err := stalint.SweepDirectives(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stalint: directive sweep: %v\n", err)
		return 2
	}
	for _, v := range violations {
		fmt.Fprintf(os.Stderr, "%s:%d: %s\n", v.File, v.Line, v.Msg)
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "stalint: %d malformed directive(s) — fix them; they cannot be baselined\n", len(violations))
		return 1
	}

	vetArgs := append([]string{"vet", "-json", "-vettool=" + exe}, append(flags, pats...)...)
	cmd := exec.Command("go", vetArgs...)
	cmd.Dir = cwd
	out, runErr := cmd.CombinedOutput()
	findings, leftover := parseVetJSON(out, root)
	if runErr != nil && len(findings) == 0 && leftover != "" {
		// The vet run died before producing diagnostics (compile error,
		// bad pattern, ...): surface its output verbatim.
		fmt.Fprintln(os.Stderr, leftover)
		fmt.Fprintf(os.Stderr, "stalint: go vet: %v\n", runErr)
		return 2
	}

	if df.sarif != "" {
		if err := writeSARIF(df.sarif, findings); err != nil {
			fmt.Fprintf(os.Stderr, "stalint: writing SARIF: %v\n", err)
			return 2
		}
	}

	lines := baselineLines(findings, ignores)
	if df.writeBaseline {
		path := df.baseline
		if path == "" {
			path = "lint.baseline"
		}
		if err := writeBaseline(path, lines); err != nil {
			fmt.Fprintf(os.Stderr, "stalint: writing baseline: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "stalint: wrote %s (%d findings, %d suppressions)\n",
			path, len(findings), len(ignores))
		return 0
	}

	if df.baseline != "" {
		accepted, err := readBaseline(df.baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stalint: reading baseline: %v\n", err)
			return 2
		}
		fresh := ratchet(lines, accepted)
		if len(fresh) == 0 {
			return 0
		}
		for _, l := range fresh {
			fmt.Fprintf(os.Stderr, "stalint: new (not in %s): %s\n", df.baseline, l)
		}
		printFindings(findings, accepted)
		fmt.Fprintf(os.Stderr, "stalint: %d new line(s) beyond the baseline — fix, or regenerate with -write-baseline\n", len(fresh))
		return 1
	}

	printFindings(findings, nil)
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// printFindings renders findings in the familiar file:line:col form.
// With a baseline, only findings whose ratchet key is new are printed
// (accepted ones are part of the agreed debt).
func printFindings(fs []finding, accepted map[string]bool) {
	for _, f := range fs {
		if accepted != nil && accepted[f.key()] {
			continue
		}
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s (%s)\n", f.File, f.Line, f.Col, f.Message, f.Analyzer)
	}
}
