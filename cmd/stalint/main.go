// Command stalint runs the repository's custom static-analysis suite
// (internal/analysis): sharedstate, exhaustive, floatcmp, obscheck and
// errwrap.
//
// It speaks the go vet -vettool protocol (unitchecker), so the same
// binary works two ways:
//
//	go vet -vettool=$(which stalint) ./...   # explicit vet integration
//	stalint ./...                            # standalone: re-execs go vet
//
// In standalone mode stalint locates its own executable and re-invokes
// `go vet -vettool=<self> <patterns>`, which gives the full driver —
// package loading, facts, caching — without depending on
// golang.org/x/tools/go/packages.
//
// Analyzer flags pass through in both modes, e.g.
// `stalint -exhaustive.enums=logic.Trit ./...`.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"tpsta/internal/analysis/stalint"
)

func main() {
	args := os.Args[1:]
	if vetProtocol(args) {
		unitchecker.Main(stalint.Analyzers()...) // does not return
	}
	os.Exit(standalone(args))
}

// vetProtocol reports whether the process was invoked by go vet: the
// driver probes with -V=full and -flags, then passes a *.cfg per
// package.
func vetProtocol(args []string) bool {
	for _, a := range args {
		if strings.HasSuffix(a, ".cfg") || strings.HasPrefix(a, "-V=") || a == "-flags" {
			return true
		}
	}
	return false
}

// standalone re-executes the suite through `go vet -vettool=<self>`,
// forwarding flags and defaulting to ./... when no package pattern is
// given. Returns the exit code.
func standalone(args []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "stalint: cannot locate own executable: %v\n", err)
		return 2
	}
	var flags, pats []string
	for _, a := range args {
		if strings.HasPrefix(a, "-") {
			flags = append(flags, a)
		} else {
			pats = append(pats, a)
		}
	}
	if len(pats) == 0 {
		pats = []string{"./..."}
	}
	vetArgs := append([]string{"vet", "-vettool=" + exe}, append(flags, pats...)...)
	cmd := exec.Command("go", vetArgs...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "stalint: %v\n", err)
		return 2
	}
	return 0
}
