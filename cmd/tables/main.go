// Command tables regenerates every table and figure of the paper's
// evaluation (Tables 1–9 plus the Fig. 2/3 transistor-state analysis) and
// prints them in order. This is the harness behind EXPERIMENTS.md.
//
// Usage:
//
//	tables                 # full run (characterizes 3 technologies first)
//	tables -quick          # reduced grids and budgets (minutes → seconds)
//	tables -only 5,6       # regenerate a subset
//	tables -libdir d/      # load lib130nm.json etc. from d/ when present
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"tpsta/internal/charlib"
	"tpsta/internal/exp"
	"tpsta/internal/obs"
	"tpsta/internal/report"
)

func main() {
	var (
		quick  = flag.Bool("quick", false, "reduced grids, samples and budgets")
		only   = flag.String("only", "", "comma-separated table ids to run (1,2,3,4,23,5,6,7,8,9)")
		libdir = flag.String("libdir", "", "directory with pre-characterized lib<tech>.json files")
	)
	flag.Parse()
	if err := run(*quick, *only, *libdir); err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
}

func run(quick bool, only, libdir string) error {
	cfg := exp.Config{Quick: quick}
	want := map[string]bool{}
	if only != "" {
		for _, id := range strings.Split(only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	sel := func(id string) bool { return len(want) == 0 || want[id] }

	if libdir != "" {
		for _, name := range []string{"130nm", "90nm", "65nm"} {
			path := filepath.Join(libdir, "lib"+name+".json")
			f, err := os.Open(path)
			if err != nil {
				continue
			}
			lib, err := charlib.Load(f)
			f.Close()
			if err != nil {
				return fmt.Errorf("loading %s: %w", path, err)
			}
			exp.InjectLibrary(lib, quick)
			fmt.Printf("loaded %s from %s\n", lib, path)
		}
	}

	phases := &obs.Phases{}
	stopAll := phases.Start("tables")
	out := os.Stdout
	render := func(tb *report.Table, err error) error {
		if err != nil {
			return err
		}
		return tb.Render(out)
	}

	if sel("1") {
		_, tb := exp.Table1()
		if err := tb.Render(out); err != nil {
			return err
		}
	}
	if sel("2") {
		_, tb := exp.Table2()
		if err := tb.Render(out); err != nil {
			return err
		}
	}
	if sel("3") {
		_, tb, err := exp.Table3()
		if err := render(tb, err); err != nil {
			return err
		}
	}
	if sel("4") {
		_, tb, err := exp.Table4()
		if err := render(tb, err); err != nil {
			return err
		}
	}
	if sel("23") {
		txt, err := exp.Fig23()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, txt)
	}
	if sel("5") {
		_, tb, err := exp.Table5(cfg)
		if err := render(tb, err); err != nil {
			return err
		}
	}
	if sel("6") {
		_, tb, err := exp.Table6(cfg, exp.DefaultTable6Specs(quick))
		if err := render(tb, err); err != nil {
			return err
		}
	}
	for _, spec := range []struct {
		id  string
		fn  func(exp.Config) ([]exp.AccuracyRow, *report.Table, error)
		teq string
	}{
		{"7", exp.Table7, "130nm"},
		{"8", exp.Table8, "90nm"},
		{"9", exp.Table9, "65nm"},
	} {
		if !sel(spec.id) {
			continue
		}
		_, tb, err := spec.fn(cfg)
		if err := render(tb, err); err != nil {
			return fmt.Errorf("table %s (%s): %w", spec.id, spec.teq, err)
		}
	}
	fmt.Fprintf(out, "total wall time: %.1fs\n", stopAll().Seconds())
	return nil
}
