// Command obsreport renders an offline report from a JSONL search
// trace (tpsta -trace run.jsonl). Three views of the same file:
//
//   - per-worker timeline lanes: each worker's lifetime as a row of
//     time slices — busy running a unit ('#'), parked idle ('·'),
//     with steals ('S') overlaid at the slice they happened in;
//   - span critical path: the chain of longest-duration spans from the
//     trace root down, with each hop's share of its parent;
//   - hot subtrees: the top-k shard/subtree spans ranked by the
//     sensitization steps they consumed.
//
// It also reproduces the pool's steal/donation counters purely from
// trace events. The scheduler emits "steal" and "donate" at exactly
// the sites that bump the live ParallelStats counters, so the block
// printed here is byte-identical to the "parallel" subset of a
// `tpsta -stats` report from the same run — a cross-check that the
// trace is complete.
//
// Usage:
//
//	obsreport [-top 10] [-width 64] [run.jsonl]
//
// With no file argument the trace is read from stdin.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"tpsta/internal/obs"
)

func main() {
	top := flag.Int("top", 10, "hot subtrees to list")
	width := flag.Int("width", 64, "timeline width in slices")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "obsreport:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	evs, err := readTrace(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "obsreport:", err)
		os.Exit(1)
	}
	if err := writeReport(os.Stdout, evs, *top, *width); err != nil {
		fmt.Fprintln(os.Stderr, "obsreport:", err)
		os.Exit(1)
	}
}

// readTrace decodes a JSONL event stream. Unparseable lines abort: a
// corrupt trace should be noticed, not silently summarized.
func readTrace(r io.Reader) ([]obs.Event, error) {
	var evs []obs.Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(strings.TrimSpace(string(b))) == 0 {
			continue
		}
		var ev obs.Event
		if err := json.Unmarshal(b, &ev); err != nil {
			return nil, fmt.Errorf("trace line %d: %w", line, err)
		}
		evs = append(evs, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(evs) == 0 {
		return nil, fmt.Errorf("empty trace")
	}
	return evs, nil
}

// span is one completed span reconstructed from its trace event.
// Start/end are in trace seconds (Event.T stamps the span's end).
type span struct {
	ev         obs.Event
	start, end float64
	children   []*span
}

// trace is the decoded, indexed form of one JSONL file.
type trace struct {
	events  []obs.Event
	spans   map[uint64]*span
	roots   []*span // spans whose parent is 0 or absent from the file
	workers int     // 1 + max worker index seen anywhere

	counters parallelCounters
	donates  []int64 // donations per recipient worker
}

// parallelCounters mirrors the steal/donation subset of
// core.ParallelStats — same field order, same JSON tags — so its
// MarshalIndent output is byte-identical to the corresponding lines of
// a `tpsta -stats` report.
type parallelCounters struct {
	ShardSteals    int64   `json:"shardSteals"`
	SubtreeSteals  int64   `json:"subtreeSteals"`
	Donations      int64   `json:"donations"`
	StealsByWorker []int64 `json:"stealsByWorker"`
}

// index builds the span tree and the reproduced counters.
func index(evs []obs.Event) *trace {
	t := &trace{events: evs, spans: map[uint64]*span{}}
	workers := 0
	note := func(w int) {
		if w+1 > workers {
			workers = w + 1
		}
	}
	for _, ev := range evs {
		switch ev.Kind {
		case "span":
			sp := &span{ev: ev, end: ev.T, start: ev.T - float64(ev.DurNs)/1e9}
			t.spans[ev.Span] = sp
			if ev.Name == "worker" {
				note(ev.Worker)
			}
		case "steal", "donate", "resume":
			note(ev.Worker)
		}
	}
	t.workers = workers
	t.counters.StealsByWorker = make([]int64, workers)
	t.donates = make([]int64, workers)
	for _, ev := range evs {
		switch ev.Kind {
		case "steal":
			t.counters.StealsByWorker[ev.Worker]++
			if ev.Detail == "subtree" {
				t.counters.SubtreeSteals++
			} else {
				t.counters.ShardSteals++
			}
		case "donate":
			t.counters.Donations++
			t.donates[ev.Worker]++
		}
	}
	// Link children; order by start time (ID as a deterministic
	// tie-break) so reports are stable for a given file.
	for _, sp := range t.spans {
		if p, ok := t.spans[sp.ev.Parent]; ok && sp.ev.Parent != sp.ev.Span {
			p.children = append(p.children, sp)
		} else {
			t.roots = append(t.roots, sp)
		}
	}
	byStart := func(s []*span) {
		sort.Slice(s, func(i, j int) bool {
			// stalint:ignore floatcmp exact-value sort tie-break on decoded stamps
			if s[i].start != s[j].start {
				return s[i].start < s[j].start
			}
			return s[i].ev.Span < s[j].ev.Span
		})
	}
	for _, sp := range t.spans {
		byStart(sp.children)
	}
	byStart(t.roots)
	return t
}

// writeReport renders the full report for one decoded trace.
func writeReport(w io.Writer, evs []obs.Event, top, width int) error {
	t := index(evs)
	writeTimeline(w, t, width)
	writeCriticalPath(w, t)
	writeHotSubtrees(w, t, top)
	return writeCounters(w, t)
}

// laneOf collects one worker's busy intervals (its shard/subtree
// spans) and its lifetime (its worker spans — several engines in one
// trace each contribute one).
func laneOf(t *trace, w int) (life, busy []*span) {
	for _, sp := range t.spans {
		if sp.ev.Worker != w {
			continue
		}
		switch sp.ev.Name {
		case "worker":
			life = append(life, sp)
		case "shard", "subtree":
			busy = append(busy, sp)
		}
	}
	return life, busy
}

// writeTimeline renders the per-worker lanes. The time axis spans the
// earliest span start to the latest event stamp in the file.
func writeTimeline(w io.Writer, t *trace, width int) {
	if t.workers == 0 {
		fmt.Fprintf(w, "timeline: no worker activity in trace (serial run)\n\n")
		return
	}
	if width < 8 {
		width = 8
	}
	t0, t1 := t.events[0].T, t.events[0].T
	for _, ev := range t.events {
		if ev.T > t1 {
			t1 = ev.T
		}
	}
	for _, sp := range t.spans {
		if sp.start < t0 {
			t0 = sp.start
		}
	}
	if t1 <= t0 {
		t1 = t0 + 1e-9
	}
	slice := (t1 - t0) / float64(width)
	col := func(sec float64) int {
		c := int((sec - t0) / slice)
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	fmt.Fprintf(w, "timeline  %.3fs total, %d workers, one slice = %s  (#=busy ·=idle S=steal)\n",
		t1-t0, t.workers, fmtSec(slice))
	for wk := 0; wk < t.workers; wk++ {
		life, busy := laneOf(t, wk)
		lane := make([]byte, width)
		for i := range lane {
			lane[i] = ' '
		}
		paint := func(spans []*span, ch byte) {
			for _, sp := range spans {
				for c := col(sp.start); c <= col(sp.end); c++ {
					lane[c] = ch
				}
			}
		}
		paint(life, '.')
		paint(busy, '#')
		var steals int64
		for _, ev := range t.events {
			if ev.Kind == "steal" && ev.Worker == wk {
				lane[col(ev.T)] = 'S'
				steals++
			}
		}
		var busySec float64
		for _, sp := range busy {
			busySec += sp.end - sp.start
		}
		var lifeSec float64
		for _, sp := range life {
			lifeSec += sp.end - sp.start
		}
		pct := 0.0
		if lifeSec > 0 {
			pct = 100 * busySec / lifeSec
		}
		fmt.Fprintf(w, "  w%-2d |%s| busy %5.1f%%  units %-3d steals %-3d donated-to %d\n",
			wk, lane, pct, len(busy), steals, t.donates[wk])
	}
	fmt.Fprintln(w)
}

// writeCriticalPath walks from the longest root span down through each
// level's longest child — the chain that bounded the run's wall time.
func writeCriticalPath(w io.Writer, t *trace) {
	if len(t.roots) == 0 {
		fmt.Fprintf(w, "critical path: no spans in trace\n\n")
		return
	}
	root := t.roots[0]
	for _, sp := range t.roots {
		if sp.ev.DurNs > root.ev.DurNs {
			root = sp
		}
	}
	fmt.Fprintf(w, "critical path  (longest span chain, %d spans total)\n", len(t.spans))
	indent := ""
	for sp := root; sp != nil; {
		share := ""
		if sp != root {
			share = fmt.Sprintf("  [%2.0f%% of parent]", 100*float64(sp.ev.DurNs)/float64(max64(parentDur(t, sp), 1)))
		}
		fmt.Fprintf(w, "  %s%s  %s  worker %d  steps %d%s\n",
			indent, sp.ev.Name, fmtSec(float64(sp.ev.DurNs)/1e9), sp.ev.Worker, sp.ev.Steps, share)
		var next *span
		for _, c := range sp.children {
			if next == nil || c.ev.DurNs > next.ev.DurNs {
				next = c
			}
		}
		sp = next
		indent += "  "
	}
	fmt.Fprintln(w)
}

func parentDur(t *trace, sp *span) int64 {
	if p, ok := t.spans[sp.ev.Parent]; ok {
		return p.ev.DurNs
	}
	return sp.ev.DurNs
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// writeHotSubtrees ranks the unit spans by the steps they consumed.
func writeHotSubtrees(w io.Writer, t *trace, top int) {
	var units []*span
	for _, sp := range t.spans {
		if sp.ev.Name == "shard" || sp.ev.Name == "subtree" {
			units = append(units, sp)
		}
	}
	if len(units) == 0 {
		fmt.Fprintf(w, "hot subtrees: no unit spans in trace\n\n")
		return
	}
	sort.Slice(units, func(i, j int) bool {
		if units[i].ev.Steps != units[j].ev.Steps {
			return units[i].ev.Steps > units[j].ev.Steps
		}
		return units[i].ev.Span < units[j].ev.Span
	})
	if top > len(units) {
		top = len(units)
	}
	fmt.Fprintf(w, "hot subtrees  (top %d of %d units by steps)\n", top, len(units))
	for i := 0; i < top; i++ {
		u := units[i]
		fmt.Fprintf(w, "  %2d. %-7s  worker %-2d  steps %-8d  %s\n",
			i+1, u.ev.Name, u.ev.Worker, u.ev.Steps, fmtSec(u.end-u.start))
	}
	fmt.Fprintln(w)
}

// writeCounters prints the reproduced pool counters. The JSON block is
// marshaled from a struct whose tags and field order mirror
// core.ParallelStats, so these bytes match the same fields inside a
// `tpsta -stats` report of the run the trace came from.
func writeCounters(w io.Writer, t *trace) error {
	if t.workers == 0 {
		return nil
	}
	buf, err := json.MarshalIndent(&t.counters, "", "  ")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "parallel counters reproduced from trace events\n%s\n", buf)
	return nil
}

// fmtSec renders a duration with a unit fitting its magnitude.
func fmtSec(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.2fs", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.2fms", s*1e3)
	case s >= 1e-6:
		return fmt.Sprintf("%.1fµs", s*1e6)
	default:
		return fmt.Sprintf("%.0fns", s*1e9)
	}
}
