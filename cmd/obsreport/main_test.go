package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"tpsta/internal/circuits"
	"tpsta/internal/core"
	"tpsta/internal/obs"
	"tpsta/internal/tech"
)

// liveTrace runs a parallel search with a JSONL tracer and returns the
// trace bytes alongside the engine's own pool snapshot.
func liveTrace(t *testing.T) ([]byte, core.ParallelStats) {
	t.Helper()
	c, err := circuits.Get("c17")
	if err != nil {
		t.Fatal(err)
	}
	tc, err := tech.ByName("130nm")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tr := obs.NewJSONL(&buf)
	e := core.New(c, tc, nil, core.Options{
		Workers:        2,
		StealPollSteps: 1,
		Tracer:         tr,
	})
	if _, err := e.Enumerate(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), e.ParallelStats()
}

// TestCounterParity is the obsreport contract: the steal/donation
// counters reproduced purely from trace events must match — byte for
// byte, through the same JSON tags — the corresponding subset of the
// live ParallelStats a `tpsta -stats` report would record for the run.
func TestCounterParity(t *testing.T) {
	raw, ps := liveTrace(t)
	evs, err := readTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	tr := index(evs)

	want, err := json.MarshalIndent(&parallelCounters{
		ShardSteals:    ps.ShardSteals,
		SubtreeSteals:  ps.SubtreeSteals,
		Donations:      ps.Donations,
		StealsByWorker: ps.StealsByWorker,
	}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(&tr.counters, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("reproduced counters differ from live stats:\ngot\n%s\nwant\n%s", got, want)
	}

	// The rendered report must embed exactly those bytes.
	var report bytes.Buffer
	if err := writeReport(&report, evs, 5, 48); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(report.Bytes(), want) {
		t.Errorf("report does not embed the counters block:\n%s", report.String())
	}
}

// TestReportSections checks the report renders every section on a real
// parallel trace: one lane per worker, a critical path rooted at the
// search span, and a hot-subtree ranking.
func TestReportSections(t *testing.T) {
	raw, ps := liveTrace(t)
	evs, err := readTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := writeReport(&out, evs, 5, 48); err != nil {
		t.Fatal(err)
	}
	report := out.String()
	for _, want := range []string{
		"timeline",
		"critical path",
		"enumerate",
		"hot subtrees",
		"parallel counters",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report lacks %q:\n%s", want, report)
		}
	}
	for w := 0; w < ps.Workers; w++ {
		lane := "w" + string(rune('0'+w))
		if !strings.Contains(report, lane) {
			t.Errorf("report lacks a lane for worker %d:\n%s", w, report)
		}
	}
}

// TestReadTraceErrors covers the parser's failure modes: corrupt lines
// abort with a line number, an empty stream is rejected.
func TestReadTraceErrors(t *testing.T) {
	if _, err := readTrace(strings.NewReader("{\"kind\":\"done\"}\nnot json\n")); err == nil {
		t.Error("corrupt line accepted")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("corrupt-line error lacks the line number: %v", err)
	}
	if _, err := readTrace(strings.NewReader("")); err == nil {
		t.Error("empty trace accepted")
	}
}

// TestSerialTraceReport keeps obsreport useful on a serial trace: no
// worker spans, but the span chain and an explicit no-activity note
// must still render.
func TestSerialTraceReport(t *testing.T) {
	c, err := circuits.Get("fig4")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tr := obs.NewJSONL(&buf)
	e := core.New(c, nil, nil, core.Options{Tracer: tr})
	if _, err := e.Enumerate(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	evs, err := readTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := writeReport(&out, evs, 5, 48); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "serial run") {
		t.Errorf("serial report lacks the no-activity note:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "enumerate") {
		t.Errorf("serial report lacks the search span:\n%s", out.String())
	}
}
