module tpsta

go 1.22
