// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section. Each benchmark regenerates its table through the
// same driver cmd/tables uses (internal/exp) and asserts the headline
// property the paper claims for it, so `go test -bench=. -benchmem`
// doubles as a regression harness for the reproduction.
//
// Benchmarks run the quick configuration (reduced grids and budgets);
// the full evaluation is `go run ./cmd/tables`. Characterized libraries
// are cached per technology across iterations, so the first iteration of
// a technology's first benchmark pays its characterization.
package tpsta_test

import (
	"fmt"
	"testing"

	"tpsta/internal/circuits"
	"tpsta/internal/core"
	"tpsta/internal/exp"
	"tpsta/internal/netlist"
	"tpsta/internal/report"
	"tpsta/internal/tech"
)

var quick = exp.Config{Quick: true}

// BenchmarkTable1_AO22Vectors regenerates paper Table 1: the 12
// sensitization vectors of AO22 (3 per input).
func BenchmarkTable1_AO22Vectors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := exp.Table1()
		if len(rows) != 12 {
			b.Fatalf("AO22 vectors = %d, want 12", len(rows))
		}
	}
}

// BenchmarkTable2_OA12Vectors regenerates paper Table 2: OA12's input C
// has three sensitization vectors, A and B one each.
func BenchmarkTable2_OA12Vectors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := exp.Table2()
		if len(rows) != 5 {
			b.Fatalf("OA12 vectors = %d, want 5", len(rows))
		}
	}
}

// BenchmarkTable3_AO22VectorDelay regenerates paper Table 3: AO22
// input-A delay per vector across the three technologies; the falling
// edge must show Case 1 fastest and Case 2 slowest.
func BenchmarkTable3_AO22VectorDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := exp.Table3()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.InputRise && !(r.Delays[0] < r.Delays[1]) {
				b.Fatalf("%s: fall Case 1 not fastest", r.Tech)
			}
		}
	}
}

// BenchmarkTable4_OA12VectorDelay regenerates paper Table 4: OA12
// input-C delay per vector; the rising edge must show Case 1 slowest.
func BenchmarkTable4_OA12VectorDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := exp.Table4()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.InputRise && !(r.Delays[2] < r.Delays[0]) {
				b.Fatalf("%s: rise Case 3 not faster than Case 1", r.Tech)
			}
		}
	}
}

// BenchmarkFig23_TransistorAnalysis regenerates the Fig. 2/3 transistor
// ON/OFF/switching panels.
func BenchmarkFig23_TransistorAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig23(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5_SampleCircuit regenerates paper Table 5 on the Fig. 4
// circuit: two vectors for the same critical path, the commercial tool
// reporting only the faster one.
func BenchmarkTable5_SampleCircuit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := exp.Table5(quick)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) < 2 || rows[0].ReportedByBaseline {
			b.Fatal("worst vector should be missed by the baseline")
		}
	}
}

// BenchmarkTable6_PathIdentification regenerates paper Table 6 (quick
// circuit subset): true-path counts, CPU, and the baseline's verdicts.
func BenchmarkTable6_PathIdentification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := exp.Table6(quick, exp.DefaultTable6Specs(true))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Vectors == 0 {
				b.Fatalf("%s: no vectors", r.Circuit)
			}
		}
	}
}

// BenchmarkTable7_Accuracy130nm regenerates paper Table 7: model error
// against chained transient simulation at 130 nm; the polynomial model
// must beat the LUT baseline on mean path error.
func BenchmarkTable7_Accuracy130nm(b *testing.B) { benchAccuracy(b, exp.Table7) }

// BenchmarkTable8_Accuracy90nm regenerates paper Table 8 (90 nm).
func BenchmarkTable8_Accuracy90nm(b *testing.B) { benchAccuracy(b, exp.Table8) }

// BenchmarkTable9_Accuracy65nm regenerates paper Table 9 (65 nm).
func BenchmarkTable9_Accuracy65nm(b *testing.B) { benchAccuracy(b, exp.Table9) }

func benchAccuracy(b *testing.B, fn func(exp.Config) ([]exp.AccuracyRow, *report.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rows, _, err := fn(quick)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.DevMeanPath > r.ComMeanPath {
				b.Logf("%s: dev %.2f%% vs com %.2f%% (paper expects dev ahead on average)",
					r.Circuit, r.DevMeanPath*100, r.ComMeanPath*100)
			}
		}
	}
}

// BenchmarkParallelSearch measures the parallel true-path search
// (Options.Workers) structure-only so the measurement isolates the
// search itself: a balanced multi-output generated circuit, and the
// skewed topology (circuits.Skewed — three deep launch cones, eight
// shallow ones) where static launch-point sharding strands the pool on
// three shards and only subtree donation balances the load. Every pool
// size must report the same number of paths per circuit — the
// differential harness in internal/core pins full byte-identity; here
// the benchmark only guards against gross divergence while timing.
func BenchmarkParallelSearch(b *testing.B) {
	balanced, err := circuits.Generate(circuits.Profile{
		Name: "benchpar", Inputs: 16, Outputs: 8, Gates: 160, Depth: 9, Seed: 12345})
	if err != nil {
		b.Fatal(err)
	}
	skewed, err := circuits.Get("skew")
	if err != nil {
		b.Fatal(err)
	}
	tc, err := tech.ByName("130nm")
	if err != nil {
		b.Fatal(err)
	}
	for _, tp := range []struct {
		name string
		cir  *netlist.Circuit
	}{{"balanced", balanced}, {"skewed", skewed}} {
		wantPaths := -1
		for _, workers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/workers=%d", tp.name, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := core.New(tp.cir, tc, nil, core.Options{Workers: workers}).Enumerate()
					if err != nil {
						b.Fatal(err)
					}
					if wantPaths < 0 {
						wantPaths = len(res.Paths)
					}
					if len(res.Paths) != wantPaths {
						b.Fatalf("workers=%d found %d paths, want %d", workers, len(res.Paths), wantPaths)
					}
				}
			})
		}
	}
}
