// the same netlist as mini.bench, in structural Verilog
module mini (a, b, c, d, z);
  input a, b, c, d;
  output z;
  wire n1, n2;
  AO22  u1 (.A(a), .B(b), .C(c), .D(d), .Z(n1));
  NAND2 u2 (.A(n1), .B(c), .Z(n2));
  INV   u3 (.A(n2), .Z(z));
endmodule
