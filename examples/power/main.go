// Power estimates dynamic switching power by running random vectors
// through full-timing event-driven simulation with the characterized
// polynomial delays: unbalanced arrival times in the c499 XOR trees
// produce hazard (glitch) activity that a zero-delay functional
// simulation would miss entirely — one more consumer of accurate gate
// delays.
//
//	go run ./examples/power
package main

import (
	"fmt"
	"log"

	"tpsta/sta"
)

func main() {
	tc, err := sta.TechByName("90nm")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("characterizing 90nm library (quick grid)...")
	lib, err := sta.Characterize(tc, sta.QuickGrid())
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{"c17", "c432", "c499"} {
		cir, err := sta.BuiltinCircuit(name)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := sta.EstimatePower(cir, tc, lib, sta.PowerOptions{Vectors: 150, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s: %.2f µW dynamic @100 MHz over %d random vectors (glitch share %.1f%%)\n",
			name, rep.Total*1e6, rep.Vectors, rep.GlitchFraction*100)
		fmt.Println("  hottest nets:")
		top := rep.ByNet
		if len(top) > 5 {
			top = top[:5]
		}
		for _, na := range top {
			fmt.Printf("    %-8s %6.3f µW  activity %.2f  glitches %d\n",
				na.Net, na.Power*1e6, na.Activity, na.Glitches)
		}
	}
}
