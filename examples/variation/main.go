// Variation demonstrates the paper's announced future work: because the
// polynomial delay model already carries temperature and supply as
// variables (equation (3)), parameter variation drops in without new
// machinery. The example characterizes across T/VDD, enumerates the
// Fig. 4 circuit's true paths, evaluates them at slow/typical/fast
// corners, runs a Monte Carlo with per-gate supply noise, and shows a
// multiple-input-switching (MIS) measurement with the electrical
// simulator — the other future-work item.
//
//	go run ./examples/variation
package main

import (
	"fmt"
	"log"

	"tpsta/internal/charlib"
	"tpsta/internal/spice"
	"tpsta/sta"
)

func main() {
	tc, err := sta.TechByName("130nm")
	if err != nil {
		log.Fatal(err)
	}
	// A reduced temperature/supply sweep keeps the demo fast; production
	// use would take sta.FullGrid().
	grid := sta.Grid{
		Fo:     []float64{0.5, 2, 8},
		Tin:    []float64{20e-12, 80e-12, 250e-12},
		Temp:   []float64{-40, 25, 125},
		VDDRel: []float64{0.9, 1.0, 1.1},
	}
	fmt.Println("characterizing 130nm across temperature and supply...")
	lib, err := charlib.Characterize(tc, sta.CellLibrary(), grid, charlib.Options{})
	if err != nil {
		log.Fatal(err)
	}

	cir, err := sta.BuiltinCircuit("fig4")
	if err != nil {
		log.Fatal(err)
	}
	eng := sta.NewEngine(cir, tc, lib, sta.EngineOptions{})
	res, err := eng.Enumerate()
	if err != nil {
		log.Fatal(err)
	}
	paths := res.Paths
	if len(paths) > 6 {
		paths = paths[:6]
	}

	va := sta.NewVariationAnalyzer(cir, tc, lib)
	corners := sta.StandardCorners()
	rows, err := va.Corners(paths, corners)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nper-corner path delays (ps):")
	fmt.Printf("%-62s %10s %10s %10s\n", "path", "slow", "typical", "fast")
	for _, r := range rows {
		fmt.Printf("%-62s %10.1f %10.1f %10.1f\n",
			r.Path.String(), r.Delays[0]*1e12, r.Delays[1]*1e12, r.Delays[2]*1e12)
	}

	mc, err := va.MonteCarlo(paths, sta.MCOptions{Samples: 2000, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMonte Carlo (%d samples, global T/VDD + per-gate supply noise):\n", mc.Samples)
	fmt.Printf("%-62s %9s %8s %9s %11s\n", "path", "mean(ps)", "σ(ps)", "p99(ps)", "criticality")
	for _, st := range mc.Stats {
		fmt.Printf("%-62s %9.1f %8.2f %9.1f %10.1f%%\n",
			st.Path.String(), st.Mean*1e12, st.Std*1e12, st.P99*1e12, st.Criticality*100)
	}
	fmt.Printf("samples where the slowest path differs from the nominal-worst: %d/%d\n",
		mc.RankFlips, mc.Samples)

	// Multiple-input switching on a NAND2: the serial-stack push-out.
	fmt.Println("\nmultiple-input switching (electrical simulation, NAND2):")
	s := sta.NewSimulator(tc)
	nand := sta.CellLibrary().MustGet("NAND2")
	load := 2 * nand.InputCap(tc, "A")
	single, err := s.SimulateGate(nand, nand.Vectors("A")[0], true, 40e-12, load)
	if err != nil {
		log.Fatal(err)
	}
	mis, err := s.SimulateGateMIS(nand, []spice.SwitchingInput{
		{Pin: "A", Rising: true}, {Pin: "B", Rising: true},
	}, nil, 40e-12, load)
	if err != nil {
		log.Fatal(err)
	}
	inCross := 40e-12 / 0.8 / 2
	fmt.Printf("  single input switching: %6.2f ps\n", single.Delay*1e12)
	fmt.Printf("  both inputs together:   %6.2f ps (%+.1f%%)\n",
		(mis.OutputCross-inCross)*1e12,
		((mis.OutputCross-inCross)/single.Delay-1)*100)
}
