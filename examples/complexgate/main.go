// Complexgate reproduces the paper's Section II/III gate-level analysis:
// the sensitization-vector tables of AO22 and OA12 (Tables 1–2), the
// per-vector propagation delays across the three technologies measured
// with the switch-level electrical simulator (Tables 3–4), and the
// transistor ON/OFF/switching analysis of Figures 2 and 3.
//
//	go run ./examples/complexgate
package main

import (
	"fmt"
	"log"
	"os"

	"tpsta/internal/exp"
)

func main() {
	_, t1 := exp.Table1()
	if err := t1.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	_, t2 := exp.Table2()
	if err := t2.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("measuring per-vector delays with the electrical simulator...")
	rows3, t3, err := exp.Table3()
	if err != nil {
		log.Fatal(err)
	}
	if err := t3.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	_, t4, err := exp.Table4()
	if err != nil {
		log.Fatal(err)
	}
	if err := t4.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// The headline observation, stated the way the paper's abstract does.
	worst := 0.0
	for _, r := range rows3 {
		for i := 1; i < len(r.DiffPct); i++ {
			if d := r.DiffPct[i]; d > worst {
				worst = d
			}
		}
	}
	fmt.Printf("largest AO22 vector-dependent delay variation measured: %.1f%%\n", worst*100)
	fmt.Printf("(the paper reports variations up to ~20%%, ~12–15%% at 65nm)\n\n")

	fig, err := exp.Fig23()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig)
}
