// Quickstart: characterize a technology, load a bundled circuit and print
// its worst true paths with their sensitization vectors.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	"tpsta/sta"
)

func main() {
	tc, err := sta.TechByName("130nm")
	if err != nil {
		log.Fatal(err)
	}

	// One-time library characterization against the built-in electrical
	// simulator (use sta.NominalGrid() and SaveLibrary for production;
	// the quick grid keeps this demo fast).
	fmt.Println("characterizing 130nm library (quick grid)...")
	lib, err := sta.Characterize(tc, sta.QuickGrid())
	if err != nil {
		log.Fatal(err)
	}

	cir, err := sta.BuiltinCircuit("c17")
	if err != nil {
		log.Fatal(err)
	}
	stats, err := cir.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d inputs, %d outputs, %d gates\n\n",
		stats.Name, stats.Inputs, stats.Outputs, stats.Gates)

	// Find the 5 worst true paths in a single pass; each comes with the
	// sensitization vector of every traversed gate and the justified
	// input cube.
	eng := sta.NewEngine(cir, tc, lib, sta.EngineOptions{})
	res, err := eng.KWorst(5)
	if err != nil {
		log.Fatal(err)
	}
	for i, p := range res.Paths {
		fmt.Printf("#%d  %7.2f ps  %s\n", i+1, p.WorstDelay()*1e12, p)
		fmt.Printf("     input cube: %s=T %s\n", p.Start, cubeString(p.Cube))

		// Every reported path re-verifies functionally.
		rising := p.RiseOK
		if err := sta.VerifyPath(cir, p.Nodes, p.Start, rising, p.Cube); err != nil {
			log.Fatalf("verification failed: %v", err)
		}
	}
	fmt.Println("\nall reported paths verified as true paths")
}

func cubeString(cube sta.InputCube) string {
	names := make([]string, 0, len(cube))
	for n := range cube {
		names = append(names, n)
	}
	sort.Strings(names)
	out := ""
	for _, n := range names {
		out += fmt.Sprintf("%s=%s ", n, cube[n])
	}
	return out
}
