// Kworst contrasts the two flows on a mid-size circuit: the developed
// tool's branch-and-bound K-worst true-path search against the two-step
// baseline, which enumerates structural paths longest-first and cannot
// know how many it must sensitize before the K worst *true* paths are
// covered — the scalability argument of the paper's Section IV.B.
//
//	go run ./examples/kworst
package main

import (
	"fmt"
	"log"
	"time"

	"tpsta/sta"
)

func main() {
	tc, err := sta.TechByName("90nm")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("characterizing 90nm library (quick grid)...")
	lib, err := sta.Characterize(tc, sta.QuickGrid())
	if err != nil {
		log.Fatal(err)
	}
	cir, err := sta.BuiltinCircuit("c5315")
	if err != nil {
		log.Fatal(err)
	}
	stats, err := cir.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d gates, %d complex (%d vector arcs)\n\n",
		stats.Name, stats.Gates, stats.ComplexGates, stats.MultiVectorArcs)

	const k = 10
	eng := sta.NewEngine(cir, tc, lib, sta.EngineOptions{MaxSteps: 300_000})
	t0 := time.Now()
	res, err := eng.KWorst(k)
	if err != nil {
		log.Fatal(err)
	}
	devTime := time.Since(t0)
	fmt.Printf("developed tool: %d worst true paths in %.2fs (%d steps)\n",
		len(res.Paths), devTime.Seconds(), res.Steps)
	for i, p := range res.Paths {
		fmt.Printf("  #%-2d %7.2f ps  %d gates  %s…\n", i+1, p.WorstDelay()*1e12, len(p.Arcs), p.Nodes[0])
	}

	base := sta.NewBaseline(cir, tc, lib, sta.BaselineOptions{BacktrackLimit: 1000})
	t0 = time.Now()
	rep, err := base.Run(500)
	if err != nil {
		log.Fatal(err)
	}
	baseTime := time.Since(t0)
	fmt.Printf("\nbaseline (two-step): examined the %d longest structural paths in %.2fs\n",
		len(rep.Outcomes), baseTime.Seconds())
	fmt.Printf("  verdicts: %d true, %d declared false, %d backtrack-limited\n",
		rep.True, rep.False, rep.Abandoned)

	// How deep did the baseline have to dig to cover k true paths?
	seen := 0
	covered := -1
	for i, o := range rep.Outcomes {
		if o.Verdict == 0 { // VerdictTrue
			seen++
			if seen == k {
				covered = i + 1
				break
			}
		}
	}
	if covered < 0 {
		fmt.Printf("  ...and still had fewer than %d true paths after %d structural candidates —\n", k, len(rep.Outcomes))
		fmt.Println("  the two-step flow cannot know in advance how long its structural list must be.")
	} else {
		fmt.Printf("  it needed %d structural candidates to see %d true paths\n", covered, k)
	}
}
