// Criticalpath replays the paper's Section V.A story on the Fig. 4 sample
// circuit: the developed tool reports two sensitization vectors for the
// same critical path — the easy one (AO22 Case 1, which the emulated
// commercial tool also finds) and the harder, slower one (Case 2) that a
// vector-blind flow misses. Both are cross-checked against the chained
// transient simulation (Table 5).
//
//	go run ./examples/criticalpath
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"tpsta/internal/exp"
	"tpsta/internal/num"
	"tpsta/sta"
)

func main() {
	tc, err := sta.TechByName("130nm")
	if err != nil {
		log.Fatal(err)
	}
	cir, err := sta.BuiltinCircuit("fig4")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("the Fig. 4 sample circuit:")
	if err := sta.WriteBench(os.Stdout, cir); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	fmt.Println("characterizing + enumerating (quick grid)...")
	rows, table, err := exp.Table5(exp.Config{Quick: true})
	if err != nil {
		log.Fatal(err)
	}
	if err := table.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	var hard, easy exp.Table5Row
	for _, r := range rows {
		if r.ReportedByBaseline {
			easy = r
		} else if num.IsZero(hard.SpiceDelay) {
			hard = r // rows come worst-first
		}
	}
	delta := (hard.SpiceDelay - easy.SpiceDelay) / easy.SpiceDelay * 100
	fmt.Printf("the commercial flow underestimates the path by %.1f%% — it reports\n", delta)
	fmt.Printf("  %s\n", easy.Vector)
	fmt.Printf("and never finds the slower sensitization\n")
	fmt.Printf("  %s\n", hard.Vector)
	fmt.Printf("(the paper measures the same miss at +7.3%%: 387.55 ps vs 361.06 ps)\n\n")

	// The developed engine finds both in one pass, as distinct paths.
	tcLib, err := sta.Characterize(tc, sta.QuickGrid())
	if err != nil {
		log.Fatal(err)
	}
	eng := sta.NewEngine(cir, tc, tcLib, sta.EngineOptions{})
	res, err := eng.Enumerate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("developed tool's view of the critical course:")
	for _, p := range res.Paths {
		if strings.HasPrefix(p.CourseKey(), "N1→") {
			fmt.Printf("  %s  fall delay %.2f ps\n", p, p.FallDelay*1e12)
		}
	}
}
