// Ssta demonstrates the statistical-timing extension (the paper's cited
// future work, reference [3]): per-arc delays carry a shared global
// process term and independent per-gate local terms; arrival times
// propagate as canonical Gaussian forms with Clark's max; the resulting
// worst-arrival distribution and parametric yield curve are validated
// in-line against Monte Carlo sampling of the identical model.
//
//	go run ./examples/ssta
package main

import (
	"fmt"
	"log"
	"math"

	"tpsta/sta"
)

func main() {
	tc, err := sta.TechByName("65nm")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("characterizing 65nm library (quick grid)...")
	lib, err := sta.Characterize(tc, sta.QuickGrid())
	if err != nil {
		log.Fatal(err)
	}
	cir, err := sta.BuiltinCircuit("c880")
	if err != nil {
		log.Fatal(err)
	}
	an, err := sta.NewSSTA(cir, tc, lib, sta.SSTAOptions{BetaGlobal: 0.06, BetaLocal: 0.04})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := an.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncanonical worst arrival: mean %.1f ps, sigma %.2f ps (global share %.0f%%)\n",
		rep.Worst.Mean*1e12, rep.Worst.Sigma()*1e12,
		100*rep.Worst.Global*rep.Worst.Global/(rep.Worst.Sigma()*rep.Worst.Sigma()))

	samples, err := an.MonteCarlo(3000, 1)
	if err != nil {
		log.Fatal(err)
	}
	mean, varsum := 0.0, 0.0
	for _, x := range samples {
		mean += x
	}
	mean /= float64(len(samples))
	for _, x := range samples {
		varsum += (x - mean) * (x - mean)
	}
	fmt.Printf("Monte Carlo (3000):      mean %.1f ps, sigma %.2f ps\n",
		mean*1e12, math.Sqrt(varsum/float64(len(samples)))*1e12)

	fmt.Println("\nparametric yield vs clock period:")
	for _, z := range []float64{-2, -1, 0, 1, 2, 3} {
		period := rep.Worst.Quantile(z)
		// Empirical yield from the samples for comparison.
		cnt := 0
		for _, x := range samples {
			if x <= period {
				cnt++
			}
		}
		fmt.Printf("  T = %7.1f ps: canonical %5.1f%%   monte carlo %5.1f%%\n",
			period*1e12, rep.Yield(period)*100, 100*float64(cnt)/float64(len(samples)))
	}
}
