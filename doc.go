// Package tpsta is the repository root of a true-path static timing
// analyzer with exhaustive sensitization-vector exploration — a from-
// scratch Go reproduction of Barceló, Gili, Bota and Segura, "An
// efficient and scalable STA tool with direct path estimation and
// exhaustive sensitization vector exploration for optimal delay
// computation" (DATE 2011).
//
// The public API lives in package tpsta/sta; the per-table benchmark
// harness in bench_test.go regenerates every table and figure of the
// paper's evaluation (see EXPERIMENTS.md). Executables: cmd/tpsta (the
// analyzer), cmd/charlib (library characterization), cmd/tables (the
// full evaluation).
package tpsta
