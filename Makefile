GO ?= go

.PHONY: build test check race bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-commit gate: static analysis, the race-sensitive
# packages (the instrumentation layer, the parallel search engine and
# the shared cell/library caches it touches) under the race detector,
# and a short fuzz smoke of the Verilog parser.
check:
	$(GO) vet ./...
	$(GO) test -race ./internal/obs ./internal/core ./internal/cell ./internal/charlib
	$(GO) test -run '^$$' -fuzz '^FuzzVerilog$$' -fuzztime 10s ./internal/netlist

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

clean:
	$(GO) clean ./...
