GO ?= go

.PHONY: build test check race bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-commit gate: static analysis plus the race-sensitive
# packages (the instrumentation layer and the search engine it threads
# through) under the race detector.
check:
	$(GO) vet ./...
	$(GO) test -race ./internal/obs ./internal/core

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

clean:
	$(GO) clean ./...
