GO ?= go

.PHONY: build test lint check race bench bench-smoke clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs the stock go vet passes plus the repository's own stalint
# suite (internal/analysis): sharedstate, exhaustive, floatcmp,
# obscheck and errwrap. stalint standalone re-execs `go vet -vettool`
# on itself, so both layers go through the same driver.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/stalint ./...

# check is the pre-commit gate: static analysis, the race-sensitive
# packages (the instrumentation layer, the parallel search engine and
# the shared cell/library caches it touches) under the race detector,
# and a short fuzz smoke of the Verilog parser.
check: lint
	$(GO) test -race ./internal/obs ./internal/core ./internal/cell ./internal/charlib
	$(GO) test -run '^$$' -fuzz '^FuzzVerilog$$' -fuzztime 10s ./internal/netlist

race:
	$(GO) test -race ./...

# bench measures the delay-kernel hot path (ArcDelays before/after the
# run-specialized kernels, plus the delay-mode K-worst search) and
# records the numbers as BENCH_delay_kernels.json via cmd/benchjson,
# then runs the paper-table benchmarks of the root package once.
KERNEL_BENCH = -run '^$$' -bench 'BenchmarkArcDelays|BenchmarkKWorstDelay' -benchtime 2000x ./internal/core
bench:
	$(GO) test $(KERNEL_BENCH) | $(GO) run ./cmd/benchjson \
		-artifact "run-specialized delay kernels" \
		-command "go test $(KERNEL_BENCH)" \
		-workload "circuit=fig4 (paper Fig. 4 sample circuit, 130nm TestGrid characterization)" \
		-workload "query=slowest enumerated path, rising launch (ArcDelays); k=5 branch-and-bound (KWorstDelay)" \
		-note "ArcDelays/mapkeyed is the pre-kernel implementation (string-keyed library lookups, full 4-variable polynomial) kept as the differential oracle; ArcDelays/kernel is the integer-indexed (T,VDD)-specialized layer with a reused output buffer. Results are bit-identical by construction (see internal/core kernel tests); only the cost changes." \
		-out BENCH_delay_kernels.json
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# bench-smoke compiles and runs every benchmark in the repository once —
# the CI gate that keeps benchmark code from rotting uncompiled.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

clean:
	$(GO) clean ./...
