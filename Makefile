GO ?= go

.PHONY: build test lint check race bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs the stock go vet passes plus the repository's own stalint
# suite (internal/analysis): sharedstate, exhaustive, floatcmp,
# obscheck and errwrap. stalint standalone re-execs `go vet -vettool`
# on itself, so both layers go through the same driver.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/stalint ./...

# check is the pre-commit gate: static analysis, the race-sensitive
# packages (the instrumentation layer, the parallel search engine and
# the shared cell/library caches it touches) under the race detector,
# and a short fuzz smoke of the Verilog parser.
check: lint
	$(GO) test -race ./internal/obs ./internal/core ./internal/cell ./internal/charlib
	$(GO) test -run '^$$' -fuzz '^FuzzVerilog$$' -fuzztime 10s ./internal/netlist

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

clean:
	$(GO) clean ./...
