GO ?= go

.PHONY: build test test-norace lint lint-baseline check race bench bench-smoke bench-compare clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# test-norace runs the engine and instrumentation packages WITHOUT the
# race detector: the zero-allocation runtime gates
# (TestSearchStepDisabledZeroAlloc, TestEmitDedupeZeroAllocs,
# TestArcDelaysSteadyStateAllocs, TestSpanDisabledZeroCost) skip
# themselves under -race because its bookkeeping breaks AllocsPerRun
# accounting — a -race-only pipeline would never execute them.
test-norace:
	$(GO) test ./internal/core/ ./internal/obs/

# lint runs the stock go vet passes plus the repository's own stalint
# suite (internal/analysis): sharedstate, exhaustive, floatcmp,
# obscheck, errwrap and the interprocedural contract analyzers noalloc
# and determinism. stalint standalone re-execs `go vet -vettool` on
# itself, so both layers go through the same driver; findings and
# suppressions ratchet against the committed lint.baseline, and every
# stalint directive must carry a justification (the driver's sweep
# rejects bare or malformed ones outright).
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/stalint -baseline lint.baseline ./...

# lint-baseline regenerates the ratchet file and shows what changed.
# Run it after fixing findings (to tighten) or after accepting a new,
# justified suppression; commit the diff with the change it blesses.
lint-baseline:
	$(GO) run ./cmd/stalint -write-baseline -baseline lint.baseline ./...
	git diff --stat -- lint.baseline || true

# check is the pre-commit gate: static analysis, the non-race run of
# the zero-alloc gates, the race-sensitive packages (the
# instrumentation layer, the parallel search engine and the shared
# cell/library caches it touches) under the race detector — which
# includes the learning differential suite and its lock-free nogood
# exchange — and short fuzz smokes of the Verilog parser and the
# nogood soundness property.
check: lint test-norace
	$(GO) test -race ./internal/obs ./internal/core ./internal/cell ./internal/charlib
	$(GO) test -run '^$$' -fuzz '^FuzzVerilog$$' -fuzztime 10s ./internal/netlist
	$(GO) test -run '^$$' -fuzz '^FuzzNogood$$' -fuzztime 10s ./internal/core

race:
	$(GO) test -race ./...

# bench measures the delay-kernel hot path (ArcDelays before/after the
# run-specialized kernels, plus the delay-mode K-worst search), the
# work-stealing scheduler (serial vs static sharding vs stealing on the
# skewed topology, plus the string-free dedupe record path), the obs
# instrumentation overhead, the nogood-learning step reduction and the
# batch multi-corner sweep against independent per-corner engine runs,
# records the numbers as BENCH_*.json artifacts via cmd/benchjson, then
# runs the paper-table benchmarks of the root package once.
KERNEL_BENCH = -run '^$$' -bench 'BenchmarkArcDelays|BenchmarkKWorstDelay' -benchtime 2000x ./internal/core
BATCH_BENCH = -run '^$$' -bench 'BenchmarkArcDelays/(batched|kernel)$$' -benchtime 200000x -count 1 ./internal/core
STEAL_BENCH = -run '^$$' -bench 'BenchmarkWorkStealing|BenchmarkDedupeEmit' -benchtime 10x -benchmem ./internal/core
OBS_BENCH = -run '^$$' -bench 'BenchmarkObsOverhead' -benchtime 10x -benchmem ./internal/core
LEARN_BENCH = -run '^$$' -bench 'BenchmarkNogoodLearning' -benchtime 5x ./internal/core
MULTI_BENCH = -run '^$$' -bench 'BenchmarkMultiCorner' -benchtime 300x ./internal/core
bench:
	$(GO) test $(KERNEL_BENCH) | $(GO) run ./cmd/benchjson \
		-artifact "run-specialized delay kernels" \
		-command "go test $(KERNEL_BENCH)" \
		-workload "circuit=fig4 (paper Fig. 4 sample circuit, 130nm TestGrid characterization)" \
		-workload "query=slowest enumerated path, rising launch (ArcDelays); k=5 branch-and-bound (KWorstDelay)" \
		-note "ArcDelays/mapkeyed is the pre-kernel implementation (string-keyed library lookups, full 4-variable polynomial) kept as the differential oracle; ArcDelays/kernel is the integer-indexed (T,VDD)-specialized layer with a reused output buffer; ArcDelays/batched is the pooled struct-of-arrays path on top (see BENCH_batched_kernels.json for the gated comparison). Results are bit-identical by construction (see internal/core kernel tests); only the cost changes." \
		-out BENCH_delay_kernels.json
	$(GO) test $(BATCH_BENCH) | $(GO) run ./cmd/benchjson \
		-artifact "batched struct-of-arrays kernel evaluation" \
		-command "go test $(BATCH_BENCH)" \
		-workload "circuit=fig4 (paper Fig. 4 sample circuit, 130nm TestGrid characterization)" \
		-workload "query=slowest enumerated path, rising launch, reused output buffer (steady state)" \
		-note "ArcDelays/kernel is the PR 4 scalar walk (one Specialized.Eval per delay and per slew, two power-table builds per arc); ArcDelays/batched is the pooled struct-of-arrays path (dense slots, one shared power block per arc, branch-free fixed-shape term loop, BatchWidth-lane delay summation). Results are bit-identical by construction — the scalar-vs-batched differential suite (kernels_batch_test.go) pins Enumerate/KWorst/EnumerateCourse byte-identical at any worker count — so ns/op is the whole story and both rows must stay at 0 allocs/op. The batched row must hold >= 1.3x fewer ns/op than kernel; single-CPU shared hosts are noisy, so re-measure with interleaved runs before believing a regression." \
		-out BENCH_batched_kernels.json
	$(GO) test $(STEAL_BENCH) | $(GO) run ./cmd/benchjson \
		-artifact "work-stealing parallel search + string-free dedupe" \
		-command "go test $(STEAL_BENCH)" \
		-workload "circuit=skew (circuits.Skewed: 3 deep launch cones + 8 shallow inputs, depth-24 mixed-gate ladder, structure-only enumeration)" \
		-workload "modes=serial; static-4 (PR 2 static launch-point sharding, Options.StaticSharding); stealing-4 (work-stealing scheduler with subtree donation)" \
		-note "On a host with >= 4 CPUs, stealing-4 is the headline: static sharding strands the pool on the three deep shards while stealing spreads their donated subtrees across all workers (expected >= 1.5x over static-4). On a single-CPU host (see the host block) the three modes measure at parity: repeated runs land within the +-10-15% run-to-run noise of the machine with no consistent winner — there is no idle time for stealing to recover, and the donation/replay traffic the skew provokes costs nothing measurable. BenchmarkDedupeEmit is the string-free dedupe claim: a duplicate variant reaching emit costs 0 allocs/op (the string-keyed dedupe paid two builders and a join per visited path); the allocs column is the result, ns/op is incidental." \
		-out BENCH_work_stealing.json
	$(GO) test $(OBS_BENCH) | $(GO) run ./cmd/benchjson \
		-artifact "obs v2 instrumentation overhead on the search hot path" \
		-command "go test $(OBS_BENCH)" \
		-workload "circuit=skew (circuits.Skewed, structure-only full enumeration)" \
		-workload "modes=off (nil tracer/metrics, the production default); metrics (four step histograms: two clock reads + two atomic adds per step); sampled (JSONL tracer to io.Discard, every 64th step recorded)" \
		-note "off is the contract figure: the zero-alloc tests (TestSearchStepDisabledZeroAlloc, TestEmitDedupeZeroAllocs) pin its per-step allocation count at zero, so off-mode ns/op must track the uninstrumented PR 5 baseline. metrics and sampled are the prices of turning the dials on; their allocs/op deltas are the tracer's buffers and sampled step events, never the disabled path." \
		-out BENCH_obs_overhead.json
	$(GO) test $(LEARN_BENCH) | $(GO) run ./cmd/benchjson \
		-artifact "conflict-driven nogood learning step reduction" \
		-command "go test $(LEARN_BENCH)" \
		-workload "circuits=mult (circuits.Multiplier width 4, the reconvergent c6288-class array); skew (circuits.Skewed: 3 deep launch cones + 8 shallow inputs)" \
		-workload "modes=off (Options.Learning false); learn (conflict-driven nogood learning, serial search so steps/op is deterministic)" \
		-note "steps/op is the contract figure: the exact number of charged sensitization attempts per full enumeration, deterministic at Workers=1, with the emitted paths byte-identical between the modes (the learning differential suite pins this). The off->learn drop is the subtree volume the learned clauses prune before it is charged; the multiplier must stay >= 20% fewer. ns/op is recorded honestly but is not the headline: the pruned subtrees are the cheap fail-fast ones, so on circuits this size the recording re-runs roughly offset the pruned work in wall time — the step reduction is what scales with circuit depth." \
		-out BENCH_nogood_learning.json
	$(GO) test $(MULTI_BENCH) | $(GO) run ./cmd/benchjson \
		-artifact "batch multi-corner sweep vs independent per-corner runs" \
		-command "go test $(MULTI_BENCH)" \
		-workload "circuit=fig4 (paper Fig. 4 sample circuit, 130nm corner-grid characterization: Fo x Tin x Temp x VDD)" \
		-workload "corners=slow (125C, 0.9 VDD), typical (25C, 1.0 VDD), fast (-40C, 1.1 VDD), hot-low (85C, 0.95 VDD), cool-high (0C, 1.05 VDD); full sensitization enumeration per corner, Workers=1 in both modes" \
		-note "MultiCorner/independent builds five complete engines (five full kernel-pool compilations, one per corner); MultiCorner/sweep is one MultiCorner call: one full compilation at the first corner, then per-corner coefficient re-folds into the shared pool geometry (polyfit Pool.RespecBatch, an O(surviving-ops) fused pass over corner-variant constants only). Per-corner results are byte-identical between the modes (the multi-corner differential suite pins this at any worker count) and steady-state arc scoring stays at 0 allocs/op in both (the zero-alloc gates), so ns/op is the whole story. The independent/sweep ratio is gated at >= 1.5x via -min-ratio; both modes are serial so the figure is scheduling-noise-free." \
		-min-ratio "MultiCorner/independent,MultiCorner/sweep,1.5" \
		-out BENCH_multi_corner.json
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# bench-compare re-measures the recorded benchmark suites and fails on
# a >15% ns/op regression (or new allocations on a zero-alloc
# baseline) against the committed BENCH_*.json artifacts. CI runs it
# non-blocking: shared runners are noisy, a red job is a prompt to
# re-measure locally, not a merge gate.
bench-compare:
	$(GO) test $(KERNEL_BENCH) | $(GO) run ./cmd/benchjson -compare BENCH_delay_kernels.json
	$(GO) test $(BATCH_BENCH) | $(GO) run ./cmd/benchjson -compare BENCH_batched_kernels.json
	$(GO) test $(STEAL_BENCH) | $(GO) run ./cmd/benchjson -compare BENCH_work_stealing.json
	$(GO) test $(OBS_BENCH) | $(GO) run ./cmd/benchjson -compare BENCH_obs_overhead.json
	$(GO) test $(LEARN_BENCH) | $(GO) run ./cmd/benchjson -compare BENCH_nogood_learning.json
	$(GO) test $(MULTI_BENCH) | $(GO) run ./cmd/benchjson -compare BENCH_multi_corner.json -min-ratio "MultiCorner/independent,MultiCorner/sweep,1.5"

# bench-smoke compiles and runs every benchmark in the repository once —
# the CI gate that keeps benchmark code from rotting uncompiled.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

clean:
	$(GO) clean ./...
