// Package sta is the public API of the true-path static timing analyzer:
// a reproduction of "An efficient and scalable STA tool with direct path
// estimation and exhaustive sensitization vector exploration for optimal
// delay computation" (Barceló, Gili, Bota, Segura — DATE 2011).
//
// The typical workflow is:
//
//	tc, _ := sta.TechByName("130nm")
//	lib, _ := sta.Characterize(tc, sta.NominalGrid())   // one-time, cacheable
//	cir, _ := sta.BuiltinCircuit("c432")                // or sta.ParseBench
//	eng := sta.NewEngine(cir, tc, lib, sta.EngineOptions{})
//	res, _ := eng.KWorst(10)                            // 10 worst true paths
//	for _, p := range res.Paths { fmt.Println(p, p.WorstDelay()) }
//
// Every path comes with the sensitization vector of each traversed gate
// and the justified primary-input cube; paths with the same gate sequence
// but different vectors are distinct results, so the vector-dependent
// delay of complex gates (the paper's Section II) is never collapsed.
//
// Searches parallelize via EngineOptions.Workers (0 = all CPUs, 1 =
// serial) on a work-stealing pool: launch points seed the workers, idle
// workers steal unstarted shards and then donated DFS subtrees, and a
// shared atomic step budget makes truncation hit the serial step
// ceiling exactly. Untruncated results merge deterministically,
// byte-identical to serial; Engine.ParallelStats reports utilization,
// steals, donations and load balance. EngineOptions.Learning adds
// conflict-driven nogood learning on top: dead subtrees the search has
// already refuted are pruned on re-discovery, reducing sensitization
// attempts without changing a byte of the reported paths (see
// Engine.LearnStats).
//
// The package re-exports, under one roof:
//
//   - the standard-cell library and its sensitization-vector enumeration
//     (CellLibrary);
//   - the three technology cards and the switch-level electrical
//     simulator used as characterization and verification reference
//     (NewSimulator);
//   - characterization into polynomial models plus baseline NLDM tables
//     (Characterize, SaveLibrary/LoadLibrary);
//   - the single-pass true-path engine (NewEngine) and the emulated
//     two-step commercial baseline (NewBaseline);
//   - the ISCAS-85 evaluation circuits (BuiltinCircuit) and the .bench
//     parser (ParseBench);
//   - functional path verification (VerifyPath).
package sta

import (
	"io"

	"tpsta/internal/baseline"
	"tpsta/internal/block"
	"tpsta/internal/cell"
	"tpsta/internal/charlib"
	"tpsta/internal/circuits"
	"tpsta/internal/core"
	"tpsta/internal/eco"
	"tpsta/internal/liberty"
	"tpsta/internal/netlist"
	"tpsta/internal/obs"
	"tpsta/internal/power"
	"tpsta/internal/sdf"
	"tpsta/internal/sim"
	"tpsta/internal/spice"
	"tpsta/internal/ssta"
	"tpsta/internal/tech"
	"tpsta/internal/variation"
)

// Re-exported core types. The aliases keep the public surface small
// while documentation and methods live with the implementations.
type (
	// Tech is a technology card (130nm, 90nm or 65nm).
	Tech = tech.Tech
	// Cell is one standard cell; Vectors enumerates its sensitization
	// vectors per input pin.
	Cell = cell.Cell
	// Vector is one sensitization vector of a (cell, pin) pair.
	Vector = cell.Vector
	// CellLib is the standard-cell library.
	CellLib = cell.Lib
	// Circuit is a combinational gate-level netlist.
	Circuit = netlist.Circuit
	// Library is a characterized timing library: polynomial models per
	// sensitization vector plus baseline LUT tables.
	Library = charlib.Library
	// Grid is a characterization sweep specification.
	Grid = charlib.Grid
	// Engine is the single-pass true-path STA engine (the paper's
	// contribution).
	Engine = core.Engine
	// EngineOptions tunes a true-path search.
	EngineOptions = core.Options
	// TruePath is one reported path variant with vectors, cube and
	// delays.
	TruePath = core.TruePath
	// Result is a set of reported true paths.
	Result = core.Result
	// Baseline is the emulated two-step commercial tool.
	Baseline = baseline.Tool
	// BaselineOptions tunes the emulated tool.
	BaselineOptions = baseline.Options
	// BaselineReport is the emulated tool's run report.
	BaselineReport = baseline.Report
	// InputCube is a primary-input assignment (settled levels; TX =
	// don't care).
	InputCube = sim.InputCube
	// Simulator is the switch-level transient simulator.
	Simulator = spice.Sim
)

// Observability. The engines expose typed instrumentation snapshots
// (Engine.Stats, Baseline.Stats, BlockAnalyzer.Stats, Library.Stats)
// and accept structured tracers and progress callbacks through their
// options; ServeDebug opens the expvar/pprof endpoints.

type (
	// EngineStats is the true-path engine's instrumentation snapshot:
	// sensitization attempts, conflicts caught by forward implication,
	// justification backtracks and aborts, per-input quota exhaustions,
	// paths recorded/deduped, and the truncation cause.
	EngineStats = core.SearchStats
	// EngineProgress is the payload of EngineOptions.Progress.
	EngineProgress = core.ProgressInfo
	// EngineParallelStats is the worker-pool snapshot of the engine's
	// most recent parallel run (EngineOptions.Workers != 1): pool size,
	// shard and scheduled-unit counts, shard/subtree steals, donations,
	// wall/busy/idle seconds, utilization and the busy-time balance
	// ratio. See Engine.ParallelStats.
	EngineParallelStats = core.ParallelStats
	// EngineKernelStats describes the engine's run-specialized
	// delay-kernel layer: arcs specialized at the run's (T, VDD),
	// surviving polynomial terms, one-time build cost, arc queries
	// served, the struct-of-arrays pool shape (kernels, pooled terms
	// and factor ops) and the batched evaluator's occupancy (rounds,
	// lanes, mean fill). See Engine.KernelStats.
	EngineKernelStats = core.KernelStats
	// EngineLearnStats is the conflict-driven nogood learning snapshot
	// of the engine's most recent run (EngineOptions.Learning): clauses
	// learned and their total condition count, subtree prunes (hits),
	// cross-worker exports/imports, and clauses not retained (oversized
	// or dropped at a store cap). Learning never changes the reported
	// paths — only how many sensitization attempts finding them costs.
	// See Engine.LearnStats.
	EngineLearnStats = core.LearnStats
	// TruncReason identifies which cap stopped (part of) a search.
	TruncReason = core.TruncReason
	// BaselineStats is the emulated tool's instrumentation snapshot
	// (structural candidates vs. sensitizable, backtrack-limit hits).
	BaselineStats = baseline.Stats
	// BlockStats is the block analyzer's instrumentation snapshot
	// (levelization and propagation timings, arc queries).
	BlockStats = block.Stats
	// CharStats is the characterization instrumentation snapshot
	// (per-arc sweep/fit timings, worker utilization, fit solves).
	CharStats = charlib.CharStats
	// Tracer consumes structured search events (see EngineOptions.Tracer).
	Tracer = obs.Tracer
	// TraceEvent is one structured search event.
	TraceEvent = obs.Event
	// Span is one hierarchical timed frame of a traced run; see
	// StartSpan. Link engine searches under a root span via
	// EngineOptions.TraceParent.
	Span = obs.Span
	// SpanID identifies a span within a process (0 = no parent).
	SpanID = obs.SpanID
	// Histogram is a lock-free fixed-bucket latency histogram
	// (log2-spaced nanosecond buckets, atomic counters).
	Histogram = obs.Histogram
	// HistogramStat is a histogram snapshot with count, sum and
	// interpolated p50/p90/p99.
	HistogramStat = obs.HistogramStat
	// EngineMetrics is the optional histogram bundle of a search run
	// (EngineOptions.Metrics): step latency, steal-to-resume latency,
	// per-path emit cost and kernel build time.
	EngineMetrics = core.Metrics
)

// Truncation causes (see TruncReason).
const (
	TruncNone        = core.TruncNone
	TruncInputQuota  = core.TruncInputQuota
	TruncMaxVariants = core.TruncMaxVariants
	TruncMaxSteps    = core.TruncMaxSteps
)

// NewJSONLTracer builds a tracer writing one JSON event per line to w;
// call Flush before closing w.
func NewJSONLTracer(w io.Writer) *obs.JSONL { return obs.NewJSONL(w) }

// ServeDebug starts an HTTP server on addr exposing expvar at
// /debug/vars, pprof under /debug/pprof/ and OpenMetrics text at
// /metrics, returning the bound address (useful with ":0").
func ServeDebug(addr string) (string, error) { return obs.ServeDebug(addr) }

// ServeMetrics starts an HTTP server on addr exposing only the
// OpenMetrics text endpoint at /metrics, returning the bound address.
// Register an engine's counters and histograms with
// Engine.RegisterMetrics before or after starting it.
func ServeMetrics(addr string) (string, error) { return obs.ServeMetrics(addr) }

// StartSpan opens a hierarchical span under parent (0 for a root) on
// tracer t; call End on the returned span. With a nil tracer every
// span operation is a free no-op.
func StartSpan(t Tracer, parent SpanID, name string) Span { return obs.StartSpan(t, parent, name) }

// Technologies returns the three built-in technology cards.
func Technologies() []*Tech { return tech.All() }

// TechByName returns one technology card: "130nm", "90nm" or "65nm".
func TechByName(name string) (*Tech, error) { return tech.ByName(name) }

// CellLibrary returns the built-in standard-cell library.
func CellLibrary() *CellLib { return cell.Default() }

// NominalGrid is the default characterization sweep (load and input slew
// at nominal temperature and supply).
func NominalGrid() Grid { return charlib.NominalGrid() }

// FullGrid additionally sweeps temperature and supply, exercising all
// four variables of the paper's polynomial delay model.
func FullGrid() Grid { return charlib.FullGrid() }

// QuickGrid is a reduced sweep for fast startup (tests, demos).
func QuickGrid() Grid { return charlib.TestGrid() }

// Characterize runs the one-time library parameter extraction: every
// (cell, pin, sensitization vector, edge) arc is swept through the
// electrical simulator and fitted with the polynomial model; baseline
// NLDM tables are built on the default vector.
func Characterize(tc *Tech, grid Grid) (*Library, error) {
	return charlib.Characterize(tc, cell.Default(), grid, charlib.Options{})
}

// LoadLibrary reads a characterized library saved with SaveLibrary.
func LoadLibrary(r io.Reader) (*Library, error) { return charlib.Load(r) }

// SaveLibrary writes a characterized library as JSON.
func SaveLibrary(l *Library, w io.Writer) error { return l.Save(w) }

// BuiltinCircuits lists the bundled evaluation circuits (ISCAS-85 suite
// plus the paper's Fig. 4 sample circuit).
func BuiltinCircuits() []string { return circuits.Names() }

// BuiltinCircuit returns a bundled circuit by name (e.g. "c432", "fig4").
func BuiltinCircuit(name string) (*Circuit, error) { return circuits.Get(name) }

// ParseBench reads an ISCAS-85 .bench netlist (the extended dialect also
// accepts library cell names such as AO22).
func ParseBench(name string, r io.Reader) (*Circuit, error) {
	return netlist.ParseExtendedBench(name, r)
}

// WriteBench writes a circuit in the extended .bench dialect.
func WriteBench(w io.Writer, c *Circuit) error { return netlist.WriteBench(w, c) }

// NewEngine builds a true-path engine. lib may be nil for structure-only
// analysis (paths ordered by length instead of delay).
func NewEngine(c *Circuit, tc *Tech, lib *Library, opts EngineOptions) *Engine {
	return core.New(c, tc, lib, opts)
}

// NewBaseline builds the emulated two-step commercial tool.
func NewBaseline(c *Circuit, tc *Tech, lib *Library, opts BaselineOptions) *Baseline {
	return baseline.New(c, tc, lib, opts)
}

// NewSimulator returns the switch-level transient simulator at nominal
// conditions for the technology.
func NewSimulator(tc *Tech) *Simulator { return spice.New(tc) }

// VerifyPath checks floating-mode sensitization of a reported path: the
// transition launched at start (rising or falling) must propagate along
// the node sequence when the remaining inputs settle at the cube levels.
func VerifyPath(c *Circuit, path []string, start string, rising bool, cube InputCube) error {
	return sim.Verify(c, path, start, rising, cube)
}

// Block-based STA and variation analysis (extensions beyond the paper's
// core contribution; variation is its stated future work).

// BlockAnalyzer is the classic graph-based STA engine: linear-time
// arrival/required/slack propagation with vector-blind worst-case arcs —
// a sound but pessimistic bound the true-path engine refines.
type BlockAnalyzer = block.Analyzer

// BlockOptions tunes block-based STA.
type BlockOptions = block.Options

// BlockReport is the block-based result (arrivals, slacks, critical
// course).
type BlockReport = block.Report

// NewBlockAnalyzer builds a block-based analyzer.
func NewBlockAnalyzer(c *Circuit, tc *Tech, lib *Library, opts BlockOptions) *BlockAnalyzer {
	return block.New(c, tc, lib, opts)
}

// Multi-corner batch analysis. Engine.MultiCorner (and
// Engine.MultiCornerKWorst) run the true-path search at every
// operating point of one batch: the corner-invariant engine state is
// compiled once, only the per-corner coefficient banks are
// respecialized into the shared kernel pool, and with Workers > 1 all
// (corner × launch input) shards drain through one work-stealing
// pool. Each corner's Result is byte-identical to an independent run
// at that point; the cross-corner merge reports every path variant's
// delay per corner and its worst corner.

type (
	// OperatingPoint is one corner of a multi-corner sweep (°C,
	// absolute VDD; zero VDD = technology nominal).
	OperatingPoint = core.OperatingPoint
	// CornerResult pairs one corner with its full search result.
	CornerResult = core.CornerResult
	// CornerStats is the per-corner observability row of a sweep
	// (build cost and shared-build flag, steps, paths, worst delay,
	// truncation, busy seconds).
	CornerStats = core.CornerStats
	// CrossCornerPath is one distinct path variant with its delay at
	// every corner and the index of its worst corner.
	CrossCornerPath = core.CrossCornerPath
	// MultiCornerResult is the outcome of one batch sweep: per-corner
	// results, the cross-corner path table, per-corner stats and the
	// shared pool's snapshot.
	MultiCornerResult = core.MultiCornerResult
)

// CornerPoints resolves relative corners (e.g. StandardCorners) against
// a technology's nominal supply into the absolute operating points
// Engine.MultiCorner consumes.
func CornerPoints(tc *Tech, corners []VariationCorner) []OperatingPoint {
	return variation.Points(tc, corners)
}

// VariationAnalyzer evaluates true paths across environmental corners
// and Monte Carlo samples, exploiting the polynomial model's built-in
// temperature and supply variables.
type VariationAnalyzer = variation.Analyzer

// VariationCorner is one operating point.
type VariationCorner = variation.Corner

// MCOptions tunes Monte Carlo variation analysis.
type MCOptions = variation.MCOptions

// MCResult is the Monte Carlo outcome (per-path statistics and
// criticality).
type MCResult = variation.MCResult

// NewVariationAnalyzer builds a variation analyzer; the library should be
// characterized over temperature and supply (FullGrid).
func NewVariationAnalyzer(c *Circuit, tc *Tech, lib *Library) *VariationAnalyzer {
	return variation.New(c, tc, lib)
}

// StandardCorners returns the slow/typical/fast corner trio.
func StandardCorners() []VariationCorner { return variation.StandardCorners() }

// Interchange formats.

// ParseVerilog reads a structural gate-level Verilog module instantiating
// library cells (the flavor synthesis tools emit).
func ParseVerilog(name string, r io.Reader) (*Circuit, error) {
	return netlist.ParseVerilog(name, r)
}

// WriteVerilog emits the circuit as a structural Verilog module.
func WriteVerilog(w io.Writer, c *Circuit) error { return netlist.WriteVerilog(w, c) }

// WriteLiberty exports the characterized library's NLDM view in Liberty
// (.lib) format. The per-vector polynomial models have no Liberty
// representation — the gap the paper identifies in commercial flows.
func WriteLiberty(w io.Writer, lib *Library) error {
	return liberty.Write(w, lib, cell.Default())
}

// SDFOptions tunes SDF annotation.
type SDFOptions = sdf.Options

// WriteSDF annotates the circuit's timing arcs in SDF 3.0; each arc's
// (min:typ:max) triple spans the sensitization vectors, with typ the
// default vector a vector-blind consumer would use.
func WriteSDF(w io.Writer, c *Circuit, tc *Tech, lib *Library, opts SDFOptions) error {
	return sdf.Write(w, c, tc, lib, opts)
}

// PowerOptions tunes dynamic-power estimation.
type PowerOptions = power.Options

// PowerReport is the switching-activity/power result.
type PowerReport = power.Report

// EstimatePower runs vector-driven full-timing activity simulation and
// returns per-net switching activity (including glitch activity) and
// dynamic power.
func EstimatePower(c *Circuit, tc *Tech, lib *Library, opts PowerOptions) (*PowerReport, error) {
	return power.Estimate(c, tc, lib, opts)
}

// WriteDot emits the circuit as a Graphviz digraph, highlighting the
// given net sequence (e.g. a critical path) in red.
func WriteDot(w io.Writer, c *Circuit, highlight []string) error {
	return netlist.WriteDot(w, c, highlight)
}

// ExtractCone narrows a circuit to the transitive fanin of the named
// outputs — the standard preparation before an expensive endpoint
// analysis on a large design.
func ExtractCone(c *Circuit, outputs []string) (*Circuit, error) {
	return netlist.ExtractCone(c, cell.Default(), outputs)
}

// Statistical STA (canonical first-order model, Clark's max).

// SSTAOptions sets the process-variation betas and the nominal query
// point.
type SSTAOptions = ssta.Options

// SSTAReport carries canonical (Gaussian) arrivals and the yield curve.
type SSTAReport = ssta.Report

// SSTAAnalyzer propagates canonical arrival forms; MonteCarlo samples the
// identical model for validation.
type SSTAAnalyzer = ssta.Analyzer

// NewSSTA builds a statistical analyzer over the characterized library.
func NewSSTA(c *Circuit, tc *Tech, lib *Library, opts SSTAOptions) (*SSTAAnalyzer, error) {
	return ssta.New(c, tc, lib, opts)
}

// ECOOptions tunes the timing-driven gate-sizing loop.
type ECOOptions = eco.Options

// ECOResult reports the optimization.
type ECOResult = eco.Result

// OptimizeTiming runs the ECO loop: iterative upsizing of critical gates
// (X2 drive variants) with incremental re-analysis until the clock period
// is met. The library must be characterized over cell.Extended().
func OptimizeTiming(c *Circuit, tc *Tech, lib *Library, opts ECOOptions) (*ECOResult, error) {
	return eco.Optimize(c, tc, lib, opts)
}

// ExtendedCellLibrary returns the cell library including X2 drive
// variants (characterize with this for ECO flows).
func ExtendedCellLibrary() *CellLib { return cell.Extended() }

// CharacterizeLib characterizes an explicit cell library (e.g.
// ExtendedCellLibrary()) instead of the default one.
func CharacterizeLib(tc *Tech, cells *CellLib, grid Grid) (*Library, error) {
	return charlib.Characterize(tc, cells, grid, charlib.Options{})
}
