package sta_test

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"

	"tpsta/sta"
)

// TestPublicWorkflow exercises the package-level quickstart end to end:
// characterize, load a circuit, enumerate, verify, round-trip the
// library — everything a downstream user touches.
func TestPublicWorkflow(t *testing.T) {
	tc, err := sta.TechByName("130nm")
	if err != nil {
		t.Fatal(err)
	}
	if len(sta.Technologies()) != 3 {
		t.Error("expected three technologies")
	}
	lib, err := sta.Characterize(tc, sta.QuickGrid())
	if err != nil {
		t.Fatal(err)
	}
	cir, err := sta.BuiltinCircuit("c17")
	if err != nil {
		t.Fatal(err)
	}
	eng := sta.NewEngine(cir, tc, lib, sta.EngineOptions{})
	res, err := eng.KWorst(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Paths) != 5 {
		t.Fatalf("KWorst returned %d paths", len(res.Paths))
	}
	for _, p := range res.Paths {
		if p.WorstDelay() <= 0 {
			t.Errorf("path %s has no delay", p)
		}
		rising := p.RiseOK
		if err := sta.VerifyPath(cir, p.Nodes, p.Start, rising, p.Cube); err != nil {
			t.Errorf("verification failed: %v", err)
		}
	}

	// Library round trip.
	var buf bytes.Buffer
	if err := sta.SaveLibrary(lib, &buf); err != nil {
		t.Fatal(err)
	}
	if _, err := sta.LoadLibrary(&buf); err != nil {
		t.Fatal(err)
	}

	// Baseline comparison on the same circuit.
	base := sta.NewBaseline(cir, tc, lib, sta.BaselineOptions{})
	rep, err := base.Run(20)
	if err != nil {
		t.Fatal(err)
	}
	if rep.True != 11 {
		t.Errorf("baseline found %d true paths on c17, want 11", rep.True)
	}
}

func TestPublicCells(t *testing.T) {
	lib := sta.CellLibrary()
	ao22, err := lib.Get("AO22")
	if err != nil {
		t.Fatal(err)
	}
	if got := ao22.VectorCount(); got != 12 {
		t.Errorf("AO22 vectors = %d", got)
	}
	tc, _ := sta.TechByName("65nm")
	s := sta.NewSimulator(tc)
	vec := ao22.Vectors("A")[0]
	r, err := s.SimulateGate(ao22, vec, false, 40e-12, ao22.InputCap(tc, "A"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Delay <= 0 {
		t.Error("no delay measured")
	}
}

func TestPublicBenchIO(t *testing.T) {
	src := "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = NAND(a, b)\n"
	cir, err := sta.ParseBench("mini", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sta.WriteBench(&buf, cir); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "NAND2") {
		t.Errorf("round trip: %s", buf.String())
	}
	if len(sta.BuiltinCircuits()) != 13 {
		t.Errorf("builtin circuits: %v", sta.BuiltinCircuits())
	}
}

func TestPublicFormats(t *testing.T) {
	tc, _ := sta.TechByName("130nm")
	lib, err := sta.Characterize(tc, sta.QuickGrid())
	if err != nil {
		t.Fatal(err)
	}
	cir, err := sta.BuiltinCircuit("fig4")
	if err != nil {
		t.Fatal(err)
	}
	// Verilog round trip.
	var v bytes.Buffer
	if err := sta.WriteVerilog(&v, cir); err != nil {
		t.Fatal(err)
	}
	back, err := sta.ParseVerilog("fig4", bytes.NewReader(v.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Gates) != len(cir.Gates) {
		t.Error("verilog round trip changed gate count")
	}
	// Liberty export parses back (via the exported text's header).
	var l bytes.Buffer
	if err := sta.WriteLiberty(&l, lib); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(l.String(), "library (tpsta_130nm)") {
		t.Error("liberty header missing")
	}
	// SDF annotation.
	var s bytes.Buffer
	if err := sta.WriteSDF(&s, cir, tc, lib, sta.SDFOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s.String(), "(DESIGN \"fig4\")") {
		t.Error("sdf design missing")
	}
	// Block STA and variation through the facade.
	rep, err := sta.NewBlockAnalyzer(cir, tc, lib, sta.BlockOptions{}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.WorstArrival <= 0 {
		t.Error("block analysis empty")
	}
	eng := sta.NewEngine(cir, tc, lib, sta.EngineOptions{})
	res, err := eng.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	va := sta.NewVariationAnalyzer(cir, tc, lib)
	if _, err := va.Corners(res.Paths[:2], sta.StandardCorners()); err != nil {
		t.Fatal(err)
	}
}

func TestPublicExtensions(t *testing.T) {
	tc, _ := sta.TechByName("130nm")
	// Extended library (with drive variants) powers the ECO flow.
	lib, err := sta.CharacterizeLib(tc, sta.ExtendedCellLibrary(), sta.QuickGrid())
	if err != nil {
		t.Fatal(err)
	}
	cir, err := sta.BuiltinCircuit("c17")
	if err != nil {
		t.Fatal(err)
	}
	// Cone extraction.
	cone, err := sta.ExtractCone(cir, []string{"22"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cone.Gates) >= len(cir.Gates) {
		t.Error("cone should shrink the circuit")
	}
	// Block + ECO.
	rep, err := sta.NewBlockAnalyzer(cir, tc, lib, sta.BlockOptions{}).Run()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sta.OptimizeTiming(cir, tc, lib, sta.ECOOptions{ClockPeriod: rep.WorstArrival * 0.97, MaxMoves: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.SlackAfter < res.SlackBefore {
		t.Error("eco should not worsen slack")
	}
	// Power.
	prep, err := sta.EstimatePower(cir, tc, lib, sta.PowerOptions{Vectors: 50})
	if err != nil {
		t.Fatal(err)
	}
	if prep.Total <= 0 {
		t.Error("no power")
	}
	// SSTA.
	an, err := sta.NewSSTA(cir, tc, lib, sta.SSTAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srep, err := an.Run()
	if err != nil {
		t.Fatal(err)
	}
	if srep.Worst.Sigma() <= 0 {
		t.Error("no statistical spread")
	}
	// Dot output.
	var buf bytes.Buffer
	if err := sta.WriteDot(&buf, cir, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "digraph") {
		t.Error("dot header missing")
	}
}

// TestPublicObservability exercises the obs v2 facade surface: spans
// parenting an engine search, the metrics histogram bundle, and the
// OpenMetrics endpoint serving the engine's registered source.
func TestPublicObservability(t *testing.T) {
	cir, err := sta.BuiltinCircuit("c17")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tr := sta.NewJSONLTracer(&buf)
	root := sta.StartSpan(tr, 0, "run")
	metrics := &sta.EngineMetrics{}
	eng := sta.NewEngine(cir, nil, nil, sta.EngineOptions{
		Tracer:      tr,
		TraceParent: root.ID(),
		Metrics:     metrics,
	})
	if _, err := eng.Enumerate(); err != nil {
		t.Fatal(err)
	}
	root.End()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if metrics.StepNs.Count() == 0 {
		t.Error("step histogram collected nothing")
	}
	if st := metrics.StepNs.Stat(); st.Count != metrics.StepNs.Count() {
		t.Errorf("histogram stat count %d != live count %d", st.Count, metrics.StepNs.Count())
	}
	if !strings.Contains(buf.String(), `"name":"enumerate"`) {
		t.Error("trace lacks the enumerate span")
	}

	eng.RegisterMetrics("sta.test")
	addr, err := sta.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Header.Get("Content-Type"), "openmetrics-text") {
		t.Errorf("content type = %q", resp.Header.Get("Content-Type"))
	}
	if !strings.Contains(string(body), "tpsta_core_step_ns_seconds_bucket") &&
		!strings.Contains(string(body), "tpsta_core_step_ns_bucket") {
		t.Errorf("exposition lacks the step histogram:\n%s", body)
	}
	if !strings.HasSuffix(string(body), "# EOF\n") {
		t.Error("exposition does not end with # EOF")
	}
}
