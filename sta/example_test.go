package sta_test

import (
	"fmt"
	"strings"

	"tpsta/sta"
)

// ExampleCellLibrary reproduces the paper's Table 1 enumeration for one
// input of the AO22 complex gate.
func ExampleCellLibrary() {
	ao22 := sta.CellLibrary().MustGet("AO22")
	for _, v := range ao22.Vectors("A") {
		fmt.Printf("Case %d: %s\n", v.Case, v.Key())
	}
	// Output:
	// Case 1: B=1,C=0,D=0
	// Case 2: B=1,C=1,D=0
	// Case 3: B=1,C=0,D=1
}

// ExampleParseBench loads a tiny ISCAS-style netlist.
func ExampleParseBench() {
	src := `
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(z)
n1 = NAND(a, b)
z = NAND(n1, c)
`
	cir, err := sta.ParseBench("tiny", strings.NewReader(src))
	if err != nil {
		panic(err)
	}
	st, _ := cir.Stats()
	fmt.Printf("%d inputs, %d output, %d gates, depth %d\n",
		st.Inputs, st.Outputs, st.Gates, st.Depth)
	// Output:
	// 3 inputs, 1 output, 2 gates, depth 2
}

// ExampleNewEngine runs a structure-only true-path search (no delay
// library: paths are ordered by gate count) on the exact ISCAS c17.
func ExampleNewEngine() {
	tc, _ := sta.TechByName("130nm")
	cir, _ := sta.BuiltinCircuit("c17")
	eng := sta.NewEngine(cir, tc, nil, sta.EngineOptions{})
	res, _ := eng.Enumerate()
	fmt.Printf("%d true paths over %d courses\n", len(res.Paths), res.Courses)
	longest := 0
	for _, p := range res.Paths {
		if len(p.Arcs) > longest {
			longest = len(p.Arcs)
		}
	}
	fmt.Printf("longest path: %d gates\n", longest)
	// Output:
	// 11 true paths over 11 courses
	// longest path: 3 gates
}

// ExampleEngine_MultiCorner sweeps the slow/typical/fast corner trio in
// one batch (structure-only here; with a characterized library each
// corner reports its own delays and the cross-corner table ranks path
// variants by their worst corner).
func ExampleEngine_MultiCorner() {
	tc, _ := sta.TechByName("130nm")
	cir, _ := sta.BuiltinCircuit("c17")
	eng := sta.NewEngine(cir, tc, nil, sta.EngineOptions{})
	points := sta.CornerPoints(tc, sta.StandardCorners())
	mc, err := eng.MultiCorner(points)
	if err != nil {
		panic(err)
	}
	for _, cr := range mc.Corners {
		fmt.Printf("%s: %d true paths\n", cr.Point.Name, len(cr.Result.Paths))
	}
	fmt.Printf("%d distinct variants across the sweep\n", len(mc.Cross))
	// Output:
	// slow (125°C, 0.9·VDD): 11 true paths
	// typical (25°C, VDD): 11 true paths
	// fast (-40°C, 1.1·VDD): 11 true paths
	// 11 distinct variants across the sweep
}

// ExampleTruePath_TestPair derives a two-pattern path-delay test from a
// reported path.
func ExampleTruePath_TestPair() {
	tc, _ := sta.TechByName("130nm")
	cir, _ := sta.BuiltinCircuit("fig4")
	eng := sta.NewEngine(cir, tc, nil, sta.EngineOptions{})
	res, _ := eng.EnumerateCourse([]string{"N1", "n10", "n11", "n12", "N20"})
	tp, _ := res.Paths[0].TestPair(res.Paths[0].RiseOK)
	fmt.Println("launch:", tp.Start, "observe:", tp.Output)
	fmt.Println("V1 N1 =", tp.V1["N1"], " V2 N1 =", tp.V2["N1"], " N6 =", tp.V2["N6"])
	// Output:
	// launch: N1 observe: N20
	// V1 N1 = 0  V2 N1 = 1  N6 = 0
}
